// Package wire is SharedDB's binary network protocol: the frame layout,
// message catalog and codecs shared by the server front end
// (internal/server) and the public client package.
//
// The protocol exists because the engine's folded throughput is only
// reachable from the network if a connection can keep several queries in
// flight at once — the paper's thousand concurrent queries arrive over a
// thousand sockets, and each socket must be able to land a window of
// requests in the same generation. The line protocol's one-statement-one-
// reply lockstep cannot do that; this one can:
//
//   - Every frame is length-prefixed (4-byte little-endian payload length,
//     then a 1-byte frame type, then the payload), so a reader never needs
//     delimiters and a malformed peer can be rejected without parsing.
//   - Requests carry a client-chosen request id and responses echo it, so
//     submission is pipelined: a client writes N requests back to back and
//     matches completions as they arrive — out of order when admission
//     control sheds one request of the window to a later generation.
//   - Statements are prepared once into server-side handles with typed
//     parameter binding (the engine's types.Value codec), so the hot path
//     never re-parses SQL.
//   - Results stream as cursor frames (header, row batches, done), so a
//     large result neither materializes twice nor blocks the connection's
//     other completions for longer than one batch frame.
//   - Admission rejections are typed on the wire: a BUSY frame carries the
//     engine's RetryAfter hint so well-behaved clients back off exactly as
//     the in-process TPC-W driver does.
//
// Integers are uvarints unless noted; strings and values use the storage
// codec (internal/types). The protocol is versioned by the HELLO exchange;
// the frame catalog is pinned by the api/wire.txt golden (cmd/apisnapshot
// -wire), so any change to this file's surface fails CI until the golden is
// regenerated and reviewed.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"shareddb/internal/types"
)

// Version is the protocol version exchanged in HELLO. A server refuses
// versions it does not speak with an ERR frame and closes the connection.
const Version = 1

// MaxFrame is the largest payload (type byte included) either side accepts.
// Larger length prefixes are a protocol violation: the connection is closed
// without reading the body, so a hostile or corrupt peer cannot make the
// server allocate unboundedly.
const MaxFrame = 1 << 24

// Type identifies a frame. Requests (client to server) use the low range;
// responses and pushes (server to client) set the high bit.
type Type byte

// Client-to-server frames.
const (
	THello       Type = 0x01 // proto version + requested in-flight window
	TPrepare     Type = 0x02 // register a statement, returns a handle
	TQuery       Type = 0x03 // read by handle with bound parameters
	TExec        Type = 0x04 // write by handle with bound parameters
	TQuerySQL    Type = 0x05 // ad-hoc read: SQL text + parameters
	TExecSQL     Type = 0x06 // ad-hoc write or DDL: SQL text + parameters
	TCloseStmt   Type = 0x07 // drop a statement handle
	TSubscribe   Type = 0x08 // register a standing query (SQL + parameters)
	TUnsubscribe Type = 0x09 // detach a standing query by subscription id
	TStats       Type = 0x0A // engine counters snapshot
	TPing        Type = 0x0B // liveness probe
	TQuit        Type = 0x0C // orderly close (server answers BYE)
)

// Server-to-client frames.
const (
	THelloOK    Type = 0x81 // negotiated version + server in-flight window
	TPrepareOK  Type = 0x82 // statement handle + arity + shape
	TRowsHeader Type = 0x83 // opens a result cursor: column names
	TRowBatch   Type = 0x84 // one chunk of cursor rows
	TRowsDone   Type = 0x85 // closes a cursor: total row count
	TExecOK     Type = 0x86 // write outcome: rows affected
	TErr        Type = 0x87 // typed failure (code + message)
	TBusy       Type = 0x88 // admission rejection: RetryAfter + reason
	TStatsOK    Type = 0x89 // counter name/value pairs
	TPong       Type = 0x8A // ping reply
	TSubOK      Type = 0x8B // subscription registered: subscription id
	TSubPush    Type = 0x8C // async standing-query update (full or delta)
	TBye        Type = 0x8D // orderly close acknowledgement
)

// String names the frame type for diagnostics and the catalog golden.
func (t Type) String() string {
	switch t {
	case THello:
		return "HELLO"
	case TPrepare:
		return "PREPARE"
	case TQuery:
		return "QUERY"
	case TExec:
		return "EXEC"
	case TQuerySQL:
		return "QUERY_SQL"
	case TExecSQL:
		return "EXEC_SQL"
	case TCloseStmt:
		return "CLOSE_STMT"
	case TSubscribe:
		return "SUBSCRIBE"
	case TUnsubscribe:
		return "UNSUBSCRIBE"
	case TStats:
		return "STATS"
	case TPing:
		return "PING"
	case TQuit:
		return "QUIT"
	case THelloOK:
		return "HELLO_OK"
	case TPrepareOK:
		return "PREPARE_OK"
	case TRowsHeader:
		return "ROWS_HEADER"
	case TRowBatch:
		return "ROW_BATCH"
	case TRowsDone:
		return "ROWS_DONE"
	case TExecOK:
		return "EXEC_OK"
	case TErr:
		return "ERR"
	case TBusy:
		return "BUSY"
	case TStatsOK:
		return "STATS_OK"
	case TPong:
		return "PONG"
	case TSubOK:
		return "SUB_OK"
	case TSubPush:
		return "SUB_PUSH"
	case TBye:
		return "BYE"
	}
	return fmt.Sprintf("UNKNOWN(0x%02X)", byte(t))
}

// Error codes carried by ERR frames. BUSY is not an error code — admission
// rejections have their own frame so the retry hint is first-class.
const (
	CodeInternal    uint64 = 1 // engine/storage failure executing the request
	CodeBadRequest  uint64 = 2 // malformed frame, bad arity, protocol misuse
	CodeUnknownStmt uint64 = 3 // statement handle not open on this session
	CodeUnknownSub  uint64 = 4 // subscription id not open on this session
	CodeVersion     uint64 = 5 // HELLO version not supported
)

// ErrFrameTooLarge rejects a length prefix beyond MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")

// ErrFrameEmpty rejects a zero-length frame (every frame has a type byte).
var ErrFrameEmpty = errors.New("wire: empty frame")

// errTrailing rejects payload bytes after a complete message: the protocol
// is versioned by HELLO, so a well-formed peer never pads frames, and
// tolerating garbage would let corruption pass silently.
var errTrailing = errors.New("wire: trailing bytes after message")

// ReadFrame reads one frame from r. buf is an optional reusable buffer; the
// returned payload aliases the returned buffer, which the caller passes back
// in for the next read. An io.EOF return means a clean end between frames;
// a partial frame surfaces io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, buf []byte) (t Type, payload []byte, bufOut []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, buf, ErrFrameEmpty
	}
	if n > MaxFrame {
		return 0, nil, buf, ErrFrameTooLarge
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, buf, err
	}
	return Type(buf[0]), buf[1:], buf, nil
}

// beginFrame appends the frame header (length placeholder + type byte) and
// returns the offset of the placeholder for endFrame to patch.
func beginFrame(dst []byte, t Type) ([]byte, int) {
	at := len(dst)
	dst = append(dst, 0, 0, 0, 0, byte(t))
	return dst, at
}

// endFrame patches the length prefix of the frame opened at lenAt.
func endFrame(dst []byte, lenAt int) []byte {
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return dst
}

// ---------------------------------------------------------------------------
// Payload primitives.

func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendValues(dst []byte, vals []types.Value) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	for _, v := range vals {
		dst = types.AppendValue(dst, v)
	}
	return dst
}

func appendRows(dst []byte, rows []types.Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(rows)))
	for _, r := range rows {
		dst = types.AppendRow(dst, r)
	}
	return dst
}

func appendStrings(dst []byte, ss []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = appendString(dst, s)
	}
	return dst
}

// dec is a bounds-checked payload cursor. Every getter is a no-op once err
// is set, so decoders read fields unconditionally and check once at the end
// — and a truncated, malformed or hostile payload can only produce an
// error, never a panic or an unbounded allocation (element counts are
// clamped against the bytes actually present: every element costs at least
// one byte).
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *dec) remaining() int { return len(d.b) - d.off }

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail(io.ErrUnexpectedEOF)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) bool() bool {
	if d.err != nil {
		return false
	}
	if d.remaining() < 1 {
		d.fail(io.ErrUnexpectedEOF)
		return false
	}
	b := d.b[d.off]
	d.off++
	if b > 1 {
		d.fail(fmt.Errorf("wire: bad bool byte %d", b))
		return false
	}
	return b == 1
}

func (d *dec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.remaining()) {
		d.fail(io.ErrUnexpectedEOF)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *dec) value() types.Value {
	if d.err != nil {
		return types.Null
	}
	v, n, err := types.DecodeValue(d.b[d.off:])
	if err != nil {
		d.fail(err)
		return types.Null
	}
	d.off += n
	return v
}

func (d *dec) values() []types.Value {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	if n > uint64(d.remaining()) {
		d.fail(io.ErrUnexpectedEOF)
		return nil
	}
	out := make([]types.Value, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, d.value())
	}
	return out
}

func (d *dec) row() types.Row {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.remaining()) {
		d.fail(io.ErrUnexpectedEOF)
		return nil
	}
	row := make(types.Row, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		row = append(row, d.value())
	}
	return row
}

func (d *dec) rows() []types.Row {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	if n > uint64(d.remaining()) {
		d.fail(io.ErrUnexpectedEOF)
		return nil
	}
	out := make([]types.Row, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, d.row())
	}
	return out
}

func (d *dec) strings() []string {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.remaining()) {
		d.fail(io.ErrUnexpectedEOF)
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, d.str())
	}
	return out
}

// finish returns the decode error, rejecting unconsumed trailing bytes.
func (d *dec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return errTrailing
	}
	return nil
}

// ---------------------------------------------------------------------------
// Messages. Each message has an Append method producing a complete frame
// (header included) and a Decode function over the frame's payload.

// Hello opens a session: the client's protocol version and the in-flight
// window it intends to use (informational; the server replies with the
// window it enforces).
type Hello struct {
	Version uint64
	Window  uint64
}

func (m Hello) Append(dst []byte) []byte {
	dst, at := beginFrame(dst, THello)
	dst = appendUvarint(dst, m.Version)
	dst = appendUvarint(dst, m.Window)
	return endFrame(dst, at)
}

func DecodeHello(p []byte) (Hello, error) {
	d := dec{b: p}
	m := Hello{Version: d.uvarint(), Window: d.uvarint()}
	return m, d.finish()
}

// HelloOK acknowledges a session: the negotiated version and the
// per-connection in-flight window the server enforces (a client that
// pipelines beyond it is simply back-pressured by the server's reader).
type HelloOK struct {
	Version uint64
	Window  uint64
}

func (m HelloOK) Append(dst []byte) []byte {
	dst, at := beginFrame(dst, THelloOK)
	dst = appendUvarint(dst, m.Version)
	dst = appendUvarint(dst, m.Window)
	return endFrame(dst, at)
}

func DecodeHelloOK(p []byte) (HelloOK, error) {
	d := dec{b: p}
	m := HelloOK{Version: d.uvarint(), Window: d.uvarint()}
	return m, d.finish()
}

// Prepare registers SQL as a server-side statement handle.
type Prepare struct {
	ID  uint64
	SQL string
}

func (m Prepare) Append(dst []byte) []byte {
	dst, at := beginFrame(dst, TPrepare)
	dst = appendUvarint(dst, m.ID)
	dst = appendString(dst, m.SQL)
	return endFrame(dst, at)
}

func DecodePrepare(p []byte) (Prepare, error) {
	d := dec{b: p}
	m := Prepare{ID: d.uvarint(), SQL: d.str()}
	return m, d.finish()
}

// PrepareOK returns the handle: its id, parameter arity, whether it is a
// write, and the result column names (empty for writes).
type PrepareOK struct {
	ID        uint64
	Stmt      uint64
	NumParams uint64
	IsWrite   bool
	Columns   []string
}

func (m PrepareOK) Append(dst []byte) []byte {
	dst, at := beginFrame(dst, TPrepareOK)
	dst = appendUvarint(dst, m.ID)
	dst = appendUvarint(dst, m.Stmt)
	dst = appendUvarint(dst, m.NumParams)
	dst = appendBool(dst, m.IsWrite)
	dst = appendStrings(dst, m.Columns)
	return endFrame(dst, at)
}

func DecodePrepareOK(p []byte) (PrepareOK, error) {
	d := dec{b: p}
	m := PrepareOK{ID: d.uvarint(), Stmt: d.uvarint(), NumParams: d.uvarint(),
		IsWrite: d.bool(), Columns: d.strings()}
	return m, d.finish()
}

// StmtCall is a QUERY or EXEC by handle: the pipelined hot path.
type StmtCall struct {
	ID     uint64
	Stmt   uint64
	Params []types.Value
}

func (m StmtCall) Append(dst []byte, t Type) []byte {
	dst, at := beginFrame(dst, t)
	dst = appendUvarint(dst, m.ID)
	dst = appendUvarint(dst, m.Stmt)
	dst = appendValues(dst, m.Params)
	return endFrame(dst, at)
}

func DecodeStmtCall(p []byte) (StmtCall, error) {
	d := dec{b: p}
	m := StmtCall{ID: d.uvarint(), Stmt: d.uvarint(), Params: d.values()}
	return m, d.finish()
}

// SQLCall is an ad-hoc QUERY_SQL / EXEC_SQL / SUBSCRIBE: SQL text plus
// bound parameters.
type SQLCall struct {
	ID     uint64
	SQL    string
	Params []types.Value
}

func (m SQLCall) Append(dst []byte, t Type) []byte {
	dst, at := beginFrame(dst, t)
	dst = appendUvarint(dst, m.ID)
	dst = appendString(dst, m.SQL)
	dst = appendValues(dst, m.Params)
	return endFrame(dst, at)
}

func DecodeSQLCall(p []byte) (SQLCall, error) {
	d := dec{b: p}
	m := SQLCall{ID: d.uvarint(), SQL: d.str(), Params: d.values()}
	return m, d.finish()
}

// Ref is a request that names a server-side id: CLOSE_STMT (statement
// handle), UNSUBSCRIBE (subscription id).
type Ref struct {
	ID  uint64
	Ref uint64
}

func (m Ref) Append(dst []byte, t Type) []byte {
	dst, at := beginFrame(dst, t)
	dst = appendUvarint(dst, m.ID)
	dst = appendUvarint(dst, m.Ref)
	return endFrame(dst, at)
}

func DecodeRef(p []byte) (Ref, error) {
	d := dec{b: p}
	m := Ref{ID: d.uvarint(), Ref: d.uvarint()}
	return m, d.finish()
}

// Simple is a request or reply that carries only the request id: STATS,
// PING, PONG.
type Simple struct {
	ID uint64
}

func (m Simple) Append(dst []byte, t Type) []byte {
	dst, at := beginFrame(dst, t)
	dst = appendUvarint(dst, m.ID)
	return endFrame(dst, at)
}

func DecodeSimple(p []byte) (Simple, error) {
	d := dec{b: p}
	m := Simple{ID: d.uvarint()}
	return m, d.finish()
}

// Empty is a frame with no payload beyond its type: QUIT, BYE.
func AppendEmpty(dst []byte, t Type) []byte {
	dst, at := beginFrame(dst, t)
	return endFrame(dst, at)
}

func DecodeEmpty(p []byte) error {
	d := dec{b: p}
	return d.finish()
}

// RowsHeader opens a result cursor: the column names of the rows to follow.
type RowsHeader struct {
	ID      uint64
	Columns []string
}

func (m RowsHeader) Append(dst []byte) []byte {
	dst, at := beginFrame(dst, TRowsHeader)
	dst = appendUvarint(dst, m.ID)
	dst = appendStrings(dst, m.Columns)
	return endFrame(dst, at)
}

func DecodeRowsHeader(p []byte) (RowsHeader, error) {
	d := dec{b: p}
	m := RowsHeader{ID: d.uvarint(), Columns: d.strings()}
	return m, d.finish()
}

// RowBatch is one chunk of cursor rows.
type RowBatch struct {
	ID   uint64
	Rows []types.Row
}

func (m RowBatch) Append(dst []byte) []byte {
	dst, at := beginFrame(dst, TRowBatch)
	dst = appendUvarint(dst, m.ID)
	dst = appendRows(dst, m.Rows)
	return endFrame(dst, at)
}

func DecodeRowBatch(p []byte) (RowBatch, error) {
	d := dec{b: p}
	m := RowBatch{ID: d.uvarint(), Rows: d.rows()}
	return m, d.finish()
}

// RowsDone closes a cursor; Total is the full result's row count.
type RowsDone struct {
	ID    uint64
	Total uint64
}

func (m RowsDone) Append(dst []byte) []byte {
	dst, at := beginFrame(dst, TRowsDone)
	dst = appendUvarint(dst, m.ID)
	dst = appendUvarint(dst, m.Total)
	return endFrame(dst, at)
}

func DecodeRowsDone(p []byte) (RowsDone, error) {
	d := dec{b: p}
	m := RowsDone{ID: d.uvarint(), Total: d.uvarint()}
	return m, d.finish()
}

// ExecOK reports a write's outcome.
type ExecOK struct {
	ID           uint64
	RowsAffected uint64
}

func (m ExecOK) Append(dst []byte) []byte {
	dst, at := beginFrame(dst, TExecOK)
	dst = appendUvarint(dst, m.ID)
	dst = appendUvarint(dst, m.RowsAffected)
	return endFrame(dst, at)
}

func DecodeExecOK(p []byte) (ExecOK, error) {
	d := dec{b: p}
	m := ExecOK{ID: d.uvarint(), RowsAffected: d.uvarint()}
	return m, d.finish()
}

// Error is a typed failure reply.
type Error struct {
	ID   uint64
	Code uint64
	Msg  string
}

func (m Error) Append(dst []byte) []byte {
	dst, at := beginFrame(dst, TErr)
	dst = appendUvarint(dst, m.ID)
	dst = appendUvarint(dst, m.Code)
	dst = appendString(dst, m.Msg)
	return endFrame(dst, at)
}

func DecodeError(p []byte) (Error, error) {
	d := dec{b: p}
	m := Error{ID: d.uvarint(), Code: d.uvarint(), Msg: d.str()}
	return m, d.finish()
}

// Busy is a typed admission rejection: RetryAfterNs carries the engine's
// OverloadError.RetryAfter hint in nanoseconds.
type Busy struct {
	ID           uint64
	RetryAfterNs uint64
	Reason       string
}

func (m Busy) Append(dst []byte) []byte {
	dst, at := beginFrame(dst, TBusy)
	dst = appendUvarint(dst, m.ID)
	dst = appendUvarint(dst, m.RetryAfterNs)
	dst = appendString(dst, m.Reason)
	return endFrame(dst, at)
}

func DecodeBusy(p []byte) (Busy, error) {
	d := dec{b: p}
	m := Busy{ID: d.uvarint(), RetryAfterNs: d.uvarint(), Reason: d.str()}
	return m, d.finish()
}

// StatField is one named counter in a STATS_OK reply. Values are the
// engine's unsigned counters; gauges are widened. The field list is ordered
// and extensible — clients match by name, unknown names are ignored.
type StatField struct {
	Name  string
	Value uint64
}

// StatsOK carries the engine counter snapshot.
type StatsOK struct {
	ID     uint64
	Fields []StatField
}

func (m StatsOK) Append(dst []byte) []byte {
	dst, at := beginFrame(dst, TStatsOK)
	dst = appendUvarint(dst, m.ID)
	dst = appendUvarint(dst, uint64(len(m.Fields)))
	for _, f := range m.Fields {
		dst = appendString(dst, f.Name)
		dst = appendUvarint(dst, f.Value)
	}
	return endFrame(dst, at)
}

func DecodeStatsOK(p []byte) (StatsOK, error) {
	d := dec{b: p}
	m := StatsOK{ID: d.uvarint()}
	n := d.uvarint()
	if d.err == nil && n > uint64(d.remaining()) {
		d.fail(io.ErrUnexpectedEOF)
	}
	if d.err == nil && n > 0 {
		m.Fields = make([]StatField, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			m.Fields = append(m.Fields, StatField{Name: d.str(), Value: d.uvarint()})
		}
	}
	return m, d.finish()
}

// SubOK acknowledges a SUBSCRIBE with the subscription id push frames will
// carry.
type SubOK struct {
	ID  uint64
	Sub uint64
}

func (m SubOK) Append(dst []byte) []byte {
	dst, at := beginFrame(dst, TSubOK)
	dst = appendUvarint(dst, m.ID)
	dst = appendUvarint(dst, m.Sub)
	return endFrame(dst, at)
}

func DecodeSubOK(p []byte) (SubOK, error) {
	d := dec{b: p}
	m := SubOK{ID: d.uvarint(), Sub: d.uvarint()}
	return m, d.finish()
}

// SubPush is an asynchronous standing-query update: a full result (Full
// set, Rows populated) or a per-generation delta (Added/Removed). Push
// frames carry the subscription id, not a request id — they are not
// replies.
type SubPush struct {
	Sub     uint64
	Gen     uint64
	Full    bool
	Rows    []types.Row
	Added   []types.Row
	Removed []types.Row
}

func (m SubPush) Append(dst []byte) []byte {
	dst, at := beginFrame(dst, TSubPush)
	dst = appendUvarint(dst, m.Sub)
	dst = appendUvarint(dst, m.Gen)
	dst = appendBool(dst, m.Full)
	if m.Full {
		dst = appendRows(dst, m.Rows)
	} else {
		dst = appendRows(dst, m.Added)
		dst = appendRows(dst, m.Removed)
	}
	return endFrame(dst, at)
}

func DecodeSubPush(p []byte) (SubPush, error) {
	d := dec{b: p}
	m := SubPush{Sub: d.uvarint(), Gen: d.uvarint(), Full: d.bool()}
	if m.Full {
		m.Rows = d.rows()
	} else {
		m.Added = d.rows()
		m.Removed = d.rows()
	}
	return m, d.finish()
}
