package wire

import (
	"fmt"
	"strings"
)

// Catalog renders the protocol's machine-checkable surface: version, frame
// limit, every frame type with its numeric value and payload layout, and
// the error codes. cmd/apisnapshot -wire pins this text as api/wire.txt, so
// any change to the protocol — a new frame, a renumbered type, a payload
// reshape — fails CI until the golden is regenerated and the diff reviewed,
// exactly like the public-API goldens.
func Catalog() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wire protocol version %d\n", Version)
	fmt.Fprintf(&b, "max frame %d bytes\n", MaxFrame)
	b.WriteString("frame = uint32le payload_len, type byte, payload\n")
	b.WriteString("\nclient frames\n")
	for _, f := range []struct {
		t      Type
		layout string
	}{
		{THello, "version uvarint, window uvarint"},
		{TPrepare, "id uvarint, sql string"},
		{TQuery, "id uvarint, stmt uvarint, params values"},
		{TExec, "id uvarint, stmt uvarint, params values"},
		{TQuerySQL, "id uvarint, sql string, params values"},
		{TExecSQL, "id uvarint, sql string, params values"},
		{TCloseStmt, "id uvarint, stmt uvarint"},
		{TSubscribe, "id uvarint, sql string, params values"},
		{TUnsubscribe, "id uvarint, sub uvarint"},
		{TStats, "id uvarint"},
		{TPing, "id uvarint"},
		{TQuit, "-"},
	} {
		fmt.Fprintf(&b, "  0x%02X %-12s %s\n", byte(f.t), f.t, f.layout)
	}
	b.WriteString("\nserver frames\n")
	for _, f := range []struct {
		t      Type
		layout string
	}{
		{THelloOK, "version uvarint, window uvarint"},
		{TPrepareOK, "id uvarint, stmt uvarint, nparams uvarint, iswrite bool, columns strings"},
		{TRowsHeader, "id uvarint, columns strings"},
		{TRowBatch, "id uvarint, rows rows"},
		{TRowsDone, "id uvarint, total uvarint"},
		{TExecOK, "id uvarint, rows_affected uvarint"},
		{TErr, "id uvarint, code uvarint, msg string"},
		{TBusy, "id uvarint, retry_after_ns uvarint, reason string"},
		{TStatsOK, "id uvarint, nfields uvarint, (name string, value uvarint)*"},
		{TPong, "id uvarint"},
		{TSubOK, "id uvarint, sub uvarint"},
		{TSubPush, "sub uvarint, gen uvarint, full bool, full ? rows : (added rows, removed rows)"},
		{TBye, "-"},
	} {
		fmt.Fprintf(&b, "  0x%02X %-12s %s\n", byte(f.t), f.t, f.layout)
	}
	b.WriteString("\nerror codes\n")
	for _, c := range []struct {
		code uint64
		name string
	}{
		{CodeInternal, "INTERNAL"},
		{CodeBadRequest, "BAD_REQUEST"},
		{CodeUnknownStmt, "UNKNOWN_STMT"},
		{CodeUnknownSub, "UNKNOWN_SUB"},
		{CodeVersion, "VERSION"},
	} {
		fmt.Fprintf(&b, "  %d %s\n", c.code, c.name)
	}
	return b.String()
}
