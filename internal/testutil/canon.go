// Package testutil holds shared test helpers.
package testutil

import (
	"fmt"
	"sort"
	"strings"

	"shareddb/internal/types"
)

// CanonRows renders rows as a sorted multiset fingerprint for differential
// comparisons. Floats are rounded to 6 decimals — the rounding width is
// load-bearing: it absorbs the float-association differences between
// serial, worker-partitioned and cross-shard partial-sum aggregation, and
// every differential suite must use the same width.
func CanonRows(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			if v.Kind() == types.KindFloat {
				parts[j] = fmt.Sprintf("%.6f", v.AsFloat())
			} else {
				parts[j] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// SameRows reports whether two result sets are equal as multisets under
// CanonRows.
func SameRows(a, b []types.Row) bool {
	ca, cb := CanonRows(a), CanonRows(b)
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}
