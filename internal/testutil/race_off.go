//go:build !race

// Package testutil holds cross-package test helpers. RaceEnabled lets
// allocation-gate tests skip under the race detector, whose instrumentation
// changes allocation counts.
package testutil

// RaceEnabled reports whether the binary was built with -race.
const RaceEnabled = false
