package operators

import (
	"sync"

	"shareddb/internal/expr"
	"shareddb/internal/queryset"
)

// FilterOp applies per-query predicates that could not be pushed into a
// storage access path — the "Like Expression", "Disjunction" and "Filter"
// boxes of the paper's TPC-W global plan (Figure 6). Each tuple is tested
// once per subscribed query (the predicate differs per query; only the
// tuple flow is shared), and its query set is narrowed to the survivors.
// Filters are streaming: schemas pass through unchanged. The narrowed
// query set is computed into a reusable operator scratch (the emitter
// copies the survivors into its batch arena), so the per-tuple filter path
// allocates nothing in steady state.
type FilterOp struct {
	qsScratch []queryset.QueryID
}

// FilterSpec is the per-query activation: the bound predicate over the
// schema of the stream this query's tuples arrive on.
type FilterSpec struct {
	Pred expr.Expr
}

type filterState struct {
	preds []expr.Expr // dense, indexed by generation-scoped query id
}

// Start indexes the cycle's predicates by query.
func (f *FilterOp) Start(c *Cycle) {
	c.opState = &filterState{preds: denseExprs(c.Tasks, func(spec interface{}) expr.Expr {
		s, _ := spec.(FilterSpec)
		return s.Pred
	})}
}

// Consume narrows each tuple's query set to the queries whose predicate it
// satisfies.
func (f *FilterOp) Consume(c *Cycle, b *Batch) {
	st := c.opState.(*filterState)
	for ti := range b.Tuples {
		t := &b.Tuples[ti]
		qs := t.QS.RetainInto(func(q queryset.QueryID) bool {
			if int(q) >= len(st.preds) {
				return true // query not registered here: pass through
			}
			return expr.TruthyEval(st.preds[q], t.Row, nil)
		}, f.qsScratch)
		f.qsScratch = qs.IDs()
		if !qs.Empty() {
			c.Emit(b.Stream, t.Row, qs)
		}
	}
}

// Finish releases cycle state.
func (f *FilterOp) Finish(c *Cycle) { c.opState = nil }

// SinkOp terminates the dataflow: it hands result tuples to the engine,
// which applies per-query projection and delivers rows to waiting clients.
// Handlers are keyed by generation — with pipelined execution the engine
// registers generation N+1's callback while the sink is still draining
// generation N — and are released when the generation's sink cycle ends.
type SinkOp struct {
	mu       sync.Mutex
	handlers map[uint64]func(stream int, t Tuple)
}

// SetHandler installs the tuple callback for generation gen. It must be
// called before the generation's CycleStart is pushed to the sink node.
func (s *SinkOp) SetHandler(gen uint64, fn func(stream int, t Tuple)) {
	s.mu.Lock()
	if s.handlers == nil {
		s.handlers = map[uint64]func(stream int, t Tuple){}
	}
	s.handlers[gen] = fn
	s.mu.Unlock()
}

// Start begins a sink cycle.
func (s *SinkOp) Start(*Cycle) {}

// Consume forwards tuples to the engine callback of the cycle's generation.
func (s *SinkOp) Consume(c *Cycle, b *Batch) {
	s.mu.Lock()
	fn := s.handlers[c.Gen]
	s.mu.Unlock()
	if fn == nil {
		return
	}
	for _, t := range b.Tuples {
		fn(b.Stream, t)
	}
}

// Finish releases the generation's handler; the node's OnDone callback (set
// in CycleStart) signals the engine afterwards.
func (s *SinkOp) Finish(c *Cycle) {
	s.mu.Lock()
	delete(s.handlers, c.Gen)
	s.mu.Unlock()
}

// denseExprs builds a dense query-id-indexed slice from per-task specs.
// Generation-scoped query ids are small consecutive integers, so slice
// indexing replaces map lookups on the per-tuple hot path.
func denseExprs(tasks []Task, get func(spec interface{}) expr.Expr) []expr.Expr {
	maxID := queryset.QueryID(0)
	for _, t := range tasks {
		if t.Query > maxID {
			maxID = t.Query
		}
	}
	out := make([]expr.Expr, maxID+1)
	for _, t := range tasks {
		out[t.Query] = get(t.Spec)
	}
	return out
}
