package operators

import (
	"sync"
	"testing"
)

// SyncedQueue semantics, pinned (satellite audit):
//
//  1. Messages pushed before Close are never lost: Pop drains them all
//     before reporting closed.
//  2. Push after Close is a silent no-op — never a panic, never a message
//     that a later Pop could observe.
//  3. Close is idempotent and safe to race with Push and Pop from any
//     number of goroutines.
//  4. Per-producer FIFO order survives concurrent production.
//
// These tests run under -race in CI (with -cpu 1,4), so any unsynchronized
// window in the implementation fails the build even if the assertions pass.

func msg(gen uint64) Message { return Message{Gen: gen} }

func TestSyncedQueueDrainsThenReportsClosed(t *testing.T) {
	q := NewSyncedQueue()
	for i := uint64(1); i <= 3; i++ {
		q.Push(msg(i))
	}
	q.Close()
	for i := uint64(1); i <= 3; i++ {
		m, ok := q.Pop()
		if !ok || m.Gen != i {
			t.Fatalf("Pop %d = (%v, %v), want gen %d", i, m.Gen, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop after drain on a closed queue reported ok")
	}
	if _, ok := q.Pop(); ok {
		t.Error("repeated Pop after close reported ok")
	}
}

func TestSyncedQueuePushAfterCloseIsDropped(t *testing.T) {
	q := NewSyncedQueue()
	q.Push(msg(1))
	q.Close()
	q.Push(msg(2)) // must be silently dropped
	if m, ok := q.Pop(); !ok || m.Gen != 1 {
		t.Fatalf("Pop = (%v, %v), want the pre-close message", m.Gen, ok)
	}
	if m, ok := q.Pop(); ok {
		t.Errorf("post-close Push leaked message gen=%d", m.Gen)
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d after drain", q.Len())
	}
}

func TestSyncedQueueCloseIdempotentAndConcurrent(t *testing.T) {
	q := NewSyncedQueue()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q.Close()
		}()
	}
	wg.Wait()
	if _, ok := q.Pop(); ok {
		t.Error("Pop on closed empty queue reported ok")
	}
}

// The race test: producers, consumers and closers all overlap. Every popped
// message must have been pushed, per-producer order must hold, and every
// message pushed before Close returned must eventually be popped (no lost-
// message window between the closed check and the append).
func TestSyncedQueueConcurrentPushPopCloseRace(t *testing.T) {
	const producers = 4
	const perProducer = 2000

	q := NewSyncedQueue()
	// Gen encodes (producer, seq) so consumers can check per-producer FIFO.
	encode := func(p, seq int) uint64 { return uint64(p)<<32 | uint64(seq) }

	var prodWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			for seq := 0; seq < perProducer; seq++ {
				q.Push(Message{Gen: encode(p, seq)})
			}
		}(p)
	}

	// Two consumers dequeue concurrently; per-message bookkeeping catches
	// duplicates and losses (cross-consumer order is checked by the single-
	// consumer FIFO test below, where it is actually defined).
	var consWG sync.WaitGroup
	var mu sync.Mutex
	seen := make([][]int, producers)
	for i := range seen {
		seen[i] = make([]int, perProducer)
	}
	stray := 0
	for cns := 0; cns < 2; cns++ {
		consWG.Add(1)
		go func() {
			defer consWG.Done()
			for {
				m, ok := q.Pop()
				if !ok {
					return
				}
				p := int(m.Gen >> 32)
				seq := int(m.Gen & 0xffffffff)
				mu.Lock()
				if p >= producers {
					stray++ // the post-Close push leaked through
				} else {
					seen[p][seq]++
				}
				mu.Unlock()
			}
		}()
	}

	prodWG.Wait() // every Push has returned …
	q.Close()     // … so Close must not lose any of them
	q.Push(msg(encode(producers, 0)))
	consWG.Wait()

	if stray != 0 {
		t.Error("a Push issued after Close was delivered")
	}
	for p := 0; p < producers; p++ {
		for seq, n := range seen[p] {
			if n != 1 {
				t.Fatalf("producer %d seq %d delivered %d times, want exactly once", p, seq, n)
			}
		}
	}
}

// Single-consumer FIFO: with one consumer, per-producer order must be
// strictly increasing even while producers and the closer race.
func TestSyncedQueueSingleConsumerFIFO(t *testing.T) {
	const producers = 3
	const perProducer = 1500
	q := NewSyncedQueue()
	encode := func(p, seq int) uint64 { return uint64(p)<<32 | uint64(seq) }
	var prodWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			for seq := 0; seq < perProducer; seq++ {
				q.Push(Message{Gen: encode(p, seq)})
			}
		}(p)
	}
	go func() {
		prodWG.Wait()
		q.Close()
	}()
	lastSeq := [producers]int{-1, -1, -1}
	n := 0
	for {
		m, ok := q.Pop()
		if !ok {
			break
		}
		p := int(m.Gen >> 32)
		seq := int(m.Gen & 0xffffffff)
		if seq <= lastSeq[p] {
			t.Fatalf("producer %d: seq %d dequeued after %d (FIFO broken)", p, seq, lastSeq[p])
		}
		lastSeq[p] = seq
		n++
	}
	if n != producers*perProducer {
		t.Errorf("dequeued %d, want %d", n, producers*perProducer)
	}
}
