package operators

import (
	"shareddb/internal/btree"
	"shareddb/internal/expr"
	"shareddb/internal/queryset"
	"shareddb/internal/storage"
	"shareddb/internal/types"
)

// ScanOp is a shared table scan source: one ClockScan cycle per generation
// answers all queries reading the table (paper §3.4 / §4.4). It has no
// producers; all work happens in Start. The scan's result and hit-merge
// buffers (bufs) are reused across generations (one cycle at a time per
// node), so a steady-state scan cycle allocates nothing per row.
type ScanOp struct {
	Table     *storage.Table
	OutStream int

	bufs    storage.ScanBuffers
	cbufs   storage.ColScanBuffers
	clients []storage.ScanClient
}

// ScanSpec is the per-query activation of a scan: the bound (parameter-
// substituted) predicate. Nil selects all rows.
type ScanSpec struct {
	Pred expr.Expr
}

// Start runs the shared scan for the cycle's queries. With a worker budget
// above 1 the cycle runs the partition-parallel ClockScan: contiguous row
// ranges are matched on separate workers and merged back in row order, so
// downstream operators observe the same tuple sequence as the serial scan.
// A columnar cycle (Cycle.Columnar) evaluates the same predicate index over
// the table's columnar mirror instead; emission is bit-identical.
func (s *ScanOp) Start(c *Cycle) {
	s.clients = s.clients[:0]
	for _, t := range c.Tasks {
		spec, _ := t.Spec.(ScanSpec)
		s.clients = append(s.clients, storage.ScanClient{ID: t.Query, Pred: spec.Pred})
	}
	emit := func(_ storage.RowID, row types.Row, qs queryset.Set) {
		c.Emit(s.OutStream, row, qs)
	}
	if c.Columnar {
		s.Table.SharedScanColumnar(c.TS, s.clients, c.Workers, &s.cbufs, emit)
	} else {
		s.Table.SharedScanPooled(c.TS, s.clients, c.Workers, &s.bufs, emit)
	}
	clear(s.clients)
	s.clients = s.clients[:0]
}

// Consume is never called: scans have no producers.
func (s *ScanOp) Consume(*Cycle, *Batch) {}

// Finish completes the cycle (output was emitted in Start).
func (s *ScanOp) Finish(*Cycle) {}

// ProbeOp is a shared index-probe source (paper §4.4): all look-ups of a
// generation run back-to-back against one index, with identical keys
// deduplicated by the storage layer.
type ProbeOp struct {
	Table     *storage.Table
	Index     *storage.Index
	OutStream int

	bufs    storage.ProbeBuffers
	clients []storage.ProbeClient
}

// ProbeSpec is the per-query activation of an index probe. Key (equality,
// prefix semantics) or Lo/Hi (range) select the entries; Residual filters
// fetched rows.
type ProbeSpec struct {
	Key      btree.Key
	Lo, Hi   btree.Key
	LoIncl   bool
	HiIncl   bool
	Residual expr.Expr
}

// Start runs the shared probe cycle (reusable client list and borrowed
// query sets: the emitter copies survivors into its batch arena).
func (p *ProbeOp) Start(c *Cycle) {
	p.clients = p.clients[:0]
	for _, t := range c.Tasks {
		spec, _ := t.Spec.(ProbeSpec)
		p.clients = append(p.clients, storage.ProbeClient{
			ID: t.Query, Key: spec.Key,
			Lo: spec.Lo, Hi: spec.Hi, LoIncl: spec.LoIncl, HiIncl: spec.HiIncl,
			Residual: spec.Residual,
		})
	}
	p.Table.SharedProbePooled(c.TS, p.Index, p.clients, &p.bufs, func(_ storage.RowID, row types.Row, qs queryset.Set) {
		c.Emit(p.OutStream, row, qs)
	})
	clear(p.clients)
	p.clients = p.clients[:0]
}

// Consume is never called: probes have no producers.
func (p *ProbeOp) Consume(*Cycle, *Batch) {}

// Finish completes the cycle.
func (p *ProbeOp) Finish(*Cycle) {}
