package operators

import "sync"

// SyncedQueue is the unbounded MPSC queue of Algorithm 1 ("Data:
// SyncedQueue iqq; Data: SyncedQueue irq"). Unbounded queues are what make
// SharedDB's push-based dataflow deadlock-free (§2: shared computation "may
// result in deadlocks in a pull-oriented query processor ... alleviated by a
// push-oriented query processing approach").
type SyncedQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []Message
	closed bool
}

// NewSyncedQueue returns an empty open queue.
func NewSyncedQueue() *SyncedQueue {
	q := &SyncedQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues m. Push on a closed queue is a no-op.
func (q *SyncedQueue) Push(m Message) {
	q.mu.Lock()
	if !q.closed {
		q.items = append(q.items, m)
		q.cond.Signal()
	}
	q.mu.Unlock()
}

// Pop dequeues the next message, blocking while the queue is empty.
// ok is false once the queue is closed and drained.
func (q *SyncedQueue) Pop() (Message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return Message{}, false
	}
	m := q.items[0]
	// Shift head; reclaim the backing array periodically to avoid
	// unbounded growth of the consumed prefix.
	q.items = q.items[1:]
	if len(q.items) == 0 {
		q.items = nil
	}
	return m, true
}

// Close wakes all blocked consumers; subsequent Pops drain then report ok =
// false.
func (q *SyncedQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Len returns the current queue length.
func (q *SyncedQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
