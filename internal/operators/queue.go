package operators

import "sync"

// SyncedQueue is the unbounded MPSC queue of Algorithm 1 ("Data:
// SyncedQueue iqq; Data: SyncedQueue irq"). Unbounded queues are what make
// SharedDB's push-based dataflow deadlock-free (§2: shared computation "may
// result in deadlocks in a pull-oriented query processor ... alleviated by a
// push-oriented query processing approach").
type SyncedQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []Message
	head   int // index of the next message in items
	closed bool
}

// maxIdleQueueCap is the backing-array capacity above which a fully drained
// queue releases its buffer instead of keeping it for reuse (a burst should
// not pin memory forever).
const maxIdleQueueCap = 4096

// NewSyncedQueue returns an empty open queue.
func NewSyncedQueue() *SyncedQueue {
	q := &SyncedQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues m. Push on a closed queue is a no-op.
func (q *SyncedQueue) Push(m Message) {
	q.mu.Lock()
	if !q.closed {
		if q.head > 0 && len(q.items) == cap(q.items) {
			// About to grow: compact the consumed prefix away first so a
			// never-quite-empty queue reuses its buffer instead of dragging
			// dead messages into a bigger allocation.
			n := copy(q.items, q.items[q.head:])
			clear(q.items[n:])
			q.items = q.items[:n]
			q.head = 0
		}
		q.items = append(q.items, m)
		q.cond.Signal()
	}
	q.mu.Unlock()
}

// Pop dequeues the next message, blocking while the queue is empty.
// ok is false once the queue is closed and drained.
func (q *SyncedQueue) Pop() (Message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head == len(q.items) && !q.closed {
		q.cond.Wait()
	}
	if q.head == len(q.items) {
		return Message{}, false
	}
	m := q.items[q.head]
	q.items[q.head] = Message{} // drop references for the GC
	q.head++
	if q.head == len(q.items) {
		// Fully drained: rewind into the same backing array so the
		// steady-state produce/consume cycle never reallocates.
		if cap(q.items) > maxIdleQueueCap {
			q.items = nil
		} else {
			q.items = q.items[:0]
		}
		q.head = 0
	}
	return m, true
}

// Close wakes all blocked consumers; subsequent Pops drain then report ok =
// false.
func (q *SyncedQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Len returns the current queue length.
func (q *SyncedQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) - q.head
}
