package operators

import "shareddb/internal/types"

// Unboxed hash tables for the shared join build and the shared group-by
// (paper §3.3, §3.4). The previous implementation keyed Go maps on
// types.EncodeKey strings, paying a key-encoding allocation per tuple on
// the hottest path of the plan; these tables key on a precomputed 64-bit
// hash of the key columns with open addressing over power-of-two slot
// arrays, and verify collisions by direct value comparison — no per-tuple
// allocation once a cycle's table has warmed up. Tables are owned by their
// operator and recycled across cycles (a node runs one cycle at a time).

// FNV-1a mix constants plus a splitmix-style finalizer: open addressing
// indexes by the low bits, and FNV's low bits alone cluster for sequential
// ints. Serial and parallel group/join paths MUST agree on this hash
// (bucket disjointness and shard selection both assume it), so every key
// hash in the package goes through these two helpers.
const (
	hashOffset64 = 14695981039346656037
	hashPrime64  = 1099511628211
)

func hashFinish(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// hashValues mixes the hashes of a row's selected columns into one 64-bit
// key hash. types.Value.Hash is coercion-consistent (an integral FLOAT
// hashes like the equal INT), so equal keys always collide and the value
// comparison resolves the rest.
func hashValues(row types.Row, cols []int) uint64 {
	h := uint64(hashOffset64)
	for _, c := range cols {
		h = (h ^ row[c].Hash()) * hashPrime64
	}
	return hashFinish(h)
}

// extractKeyHash copies row's key columns into dst (reused if it has
// capacity) and returns them with their hashValues-identical hash — the
// one-pass extract+hash used by both the serial and the parallel group-by.
func extractKeyHash(row types.Row, cols []int, dst []types.Value) ([]types.Value, uint64) {
	if cap(dst) < len(cols) {
		dst = make([]types.Value, len(cols))
	}
	dst = dst[:len(cols)]
	h := uint64(hashOffset64)
	for i, c := range cols {
		dst[i] = row[c]
		h = (h ^ dst[i].Hash()) * hashPrime64
	}
	return dst, hashFinish(h)
}

// rowsEqualOn reports whether two rows agree on their respective key
// columns (with numeric coercion, same as the previous EncodeKey equality).
func rowsEqualOn(a types.Row, acols []int, b types.Row, bcols []int) bool {
	for i := range acols {
		if !a[acols[i]].Equal(b[bcols[i]]) {
			return false
		}
	}
	return true
}

// joinTable is the shared hash join's build table: one bucket per distinct
// key, each holding its inner tuples as an arrival-ordered chain (so probe
// emission order matches the serial map-based build exactly).
type joinTable struct {
	keyCols []int   // key columns in the build rows' schema
	slots   []int32 // open addressing: bucket index + 1, 0 = empty
	mask    uint64
	buckets []joinBucket
	entries []joinEntry
	dead    int // unlinked entries awaiting compaction (incremental path)
}

type joinBucket struct {
	hash       uint64
	row        types.Row // representative row for collision verification
	head, tail int32     // entry chain in arrival order (-1 when emptied)
}

type joinEntry struct {
	t    Tuple
	rid  uint64 // RowID (incremental maintenance only; 0 on rebuild path)
	next int32  // -1 = end of chain
}

// reset prepares the table for a new cycle, keeping its backing arrays but
// dropping every tuple and representative-row reference so recycled version
// rows are not pinned between cycles.
func (jt *joinTable) reset(keyCols []int) {
	jt.keyCols = keyCols
	clear(jt.slots)
	clear(jt.buckets)
	jt.buckets = jt.buckets[:0]
	clear(jt.entries)
	jt.entries = jt.entries[:0]
	jt.dead = 0
}

func (jt *joinTable) len() int { return len(jt.entries) }

// grow (re)builds the slot array at the next power of two.
func (jt *joinTable) grow() {
	n := len(jt.slots) * 2
	if n < 16 {
		n = 16
	}
	if cap(jt.slots) >= n {
		jt.slots = jt.slots[:n]
		clear(jt.slots)
	} else {
		jt.slots = make([]int32, n)
	}
	jt.mask = uint64(n - 1)
	for bi := range jt.buckets {
		i := jt.buckets[bi].hash & jt.mask
		for jt.slots[i] != 0 {
			i = (i + 1) & jt.mask
		}
		jt.slots[i] = int32(bi) + 1
	}
}

// insert adds one build-side tuple under the hash of its key columns.
func (jt *joinTable) insert(h uint64, t Tuple) {
	// Load factor 1/2 over buckets (distinct keys), not entries.
	if len(jt.slots) == 0 || len(jt.buckets)*2 >= len(jt.slots) {
		jt.grow()
	}
	ei := int32(len(jt.entries))
	jt.entries = append(jt.entries, joinEntry{t: t, next: -1})
	i := h & jt.mask
	for {
		s := jt.slots[i]
		if s == 0 {
			jt.slots[i] = int32(len(jt.buckets)) + 1
			jt.buckets = append(jt.buckets, joinBucket{hash: h, row: t.Row, head: ei, tail: ei})
			return
		}
		b := &jt.buckets[s-1]
		if b.hash == h && rowsEqualOn(t.Row, jt.keyCols, b.row, jt.keyCols) {
			jt.entries[b.tail].next = ei
			b.tail = ei
			return
		}
		i = (i + 1) & jt.mask
	}
}

// lookup returns the head entry index for an outer row's key (-1 = no
// match). Iterate with jt.entries[i].next.
func (jt *joinTable) lookup(h uint64, outer types.Row, outerCols []int) int32 {
	if len(jt.slots) == 0 {
		return -1
	}
	i := h & jt.mask
	for {
		s := jt.slots[i]
		if s == 0 {
			return -1
		}
		b := &jt.buckets[s-1]
		if b.hash == h && rowsEqualOn(outer, outerCols, b.row, jt.keyCols) {
			return b.head
		}
		i = (i + 1) & jt.mask
	}
}

// bucketFor returns the bucket holding key-equal rows of row (nil when the
// key was never inserted). Unlike lookup it also finds emptied buckets, so
// incremental re-insertion can reuse them.
func (jt *joinTable) bucketFor(h uint64, row types.Row, cols []int) *joinBucket {
	if len(jt.slots) == 0 {
		return nil
	}
	i := h & jt.mask
	for {
		s := jt.slots[i]
		if s == 0 {
			return nil
		}
		b := &jt.buckets[s-1]
		if b.hash == h && rowsEqualOn(row, cols, b.row, jt.keyCols) {
			return b
		}
		i = (i + 1) & jt.mask
	}
}

// insertRID adds a build-side tuple keeping each key's chain sorted by
// RowID ascending — the arrival order of a serial scan-fed build — so probe
// emission over a maintained table is byte-identical to a rebuild. The
// common case (fresh inserts carry the table-maximal RowID) appends at the
// tail.
func (jt *joinTable) insertRID(h uint64, t Tuple, rid uint64) {
	if len(jt.slots) == 0 || len(jt.buckets)*2 >= len(jt.slots) {
		jt.grow()
	}
	ei := int32(len(jt.entries))
	jt.entries = append(jt.entries, joinEntry{t: t, rid: rid, next: -1})
	i := h & jt.mask
	for {
		s := jt.slots[i]
		if s == 0 {
			jt.slots[i] = int32(len(jt.buckets)) + 1
			jt.buckets = append(jt.buckets, joinBucket{hash: h, row: t.Row, head: ei, tail: ei})
			return
		}
		b := &jt.buckets[s-1]
		if b.hash == h && rowsEqualOn(t.Row, jt.keyCols, b.row, jt.keyCols) {
			switch {
			case b.head < 0: // emptied bucket: restart the chain
				b.row = t.Row
				b.head, b.tail = ei, ei
			case jt.entries[b.tail].rid < rid: // append (fresh insert)
				jt.entries[b.tail].next = ei
				b.tail = ei
			case jt.entries[b.head].rid > rid: // new head
				jt.entries[ei].next = b.head
				b.head = ei
			default: // ordered insert mid-chain (re-inserted update)
				prev := b.head
				for jt.entries[prev].next >= 0 && jt.entries[jt.entries[prev].next].rid < rid {
					prev = jt.entries[prev].next
				}
				jt.entries[ei].next = jt.entries[prev].next
				jt.entries[prev].next = ei
				if jt.entries[ei].next < 0 {
					b.tail = ei
				}
			}
			return
		}
		i = (i + 1) & jt.mask
	}
}

// removeRID unlinks the entry with the given RowID from the chain of
// oldRow's key. Reports whether an entry was removed. Unlinked entries stay
// as holes in the entry array (chains skip them; grow rebuilds from buckets,
// unaffected) until compaction reclaims them.
func (jt *joinTable) removeRID(h uint64, oldRow types.Row, rid uint64) bool {
	b := jt.bucketFor(h, oldRow, jt.keyCols)
	if b == nil {
		return false
	}
	prev := int32(-1)
	for ei := b.head; ei >= 0; ei = jt.entries[ei].next {
		if jt.entries[ei].rid != rid {
			prev = ei
			continue
		}
		next := jt.entries[ei].next
		if prev < 0 {
			b.head = next
		} else {
			jt.entries[prev].next = next
		}
		if b.tail == ei {
			b.tail = prev
		}
		// Drop the tuple references so retired version rows are not pinned
		// by the hole.
		jt.entries[ei] = joinEntry{next: -1}
		jt.dead++
		if jt.dead > 64 && jt.dead*2 > len(jt.entries) {
			jt.compact()
		}
		return true
	}
	return false
}

// compact rebuilds the entry array without holes, preserving every chain's
// order. Bucket indices are stable, so the slot array needs no rebuild.
func (jt *joinTable) compact() {
	newEntries := make([]joinEntry, 0, len(jt.entries)-jt.dead)
	for bi := range jt.buckets {
		b := &jt.buckets[bi]
		head, tail := int32(-1), int32(-1)
		for ei := b.head; ei >= 0; ei = jt.entries[ei].next {
			ni := int32(len(newEntries))
			e := jt.entries[ei]
			e.next = -1
			newEntries = append(newEntries, e)
			if head < 0 {
				head = ni
			} else {
				newEntries[tail].next = ni
			}
			tail = ni
		}
		b.head, b.tail = head, tail
	}
	jt.entries = newEntries
	jt.dead = 0
}

// groupTable is the shared group-by's hash table: insertion-ordered entries
// (deterministic Finish emission) with open-addressed hash slots.
type groupTable struct {
	slots   []int32 // entry index + 1, 0 = empty
	mask    uint64
	entries []*groupEntry
}

// reset prepares the table for a new cycle, keeping backing arrays.
func (gt *groupTable) reset() {
	clear(gt.slots)
	clear(gt.entries)
	gt.entries = gt.entries[:0]
}

func (gt *groupTable) grow() {
	n := len(gt.slots) * 2
	if n < 16 {
		n = 16
	}
	if cap(gt.slots) >= n {
		gt.slots = gt.slots[:n]
		clear(gt.slots)
	} else {
		gt.slots = make([]int32, n)
	}
	gt.mask = uint64(n - 1)
	for ei, ge := range gt.entries {
		i := ge.hash & gt.mask
		for gt.slots[i] != 0 {
			i = (i + 1) & gt.mask
		}
		gt.slots[i] = int32(ei) + 1
	}
}

// lookup finds the group whose key values equal keyVals (-1 = absent,
// returning the probe slot is unnecessary since insert re-probes after a
// possible grow).
func (gt *groupTable) lookup(h uint64, keyVals []types.Value) *groupEntry {
	if len(gt.slots) == 0 {
		return nil
	}
	i := h & gt.mask
	for {
		s := gt.slots[i]
		if s == 0 {
			return nil
		}
		ge := gt.entries[s-1]
		if ge.hash == h && valsEqual(ge.keyVals, keyVals) {
			return ge
		}
		i = (i + 1) & gt.mask
	}
}

// insert adds a new group entry (the caller has verified it is absent).
func (gt *groupTable) insert(ge *groupEntry) {
	if len(gt.slots) == 0 || len(gt.entries)*2 >= len(gt.slots) {
		gt.grow()
	}
	i := ge.hash & gt.mask
	for gt.slots[i] != 0 {
		i = (i + 1) & gt.mask
	}
	gt.slots[i] = int32(len(gt.entries)) + 1
	gt.entries = append(gt.entries, ge)
}

func valsEqual(a, b []types.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
