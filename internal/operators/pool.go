package operators

import "sync"

// BatchPool is the generation-aware free list of Batch buffers that keeps
// the steady-state heartbeat cycle allocation-free: emitters draw batches
// (tuple buffer + query-id arena) from the pool, and consumers return them
// once the batch's tuples can no longer be referenced — streaming operators
// right after Consume, blocking operators after their Finish phase, i.e.
// when the batch's generation has drained through that node. Ownership
// hand-off between producer and consumer goroutines goes through
// SyncedQueue (Push/Pop under its mutex), and Get/Put are mutex-guarded, so
// the recycle loop is race-clean: fill → push → pop → consume → Put → Get.
//
// One pool is shared per global plan (every node of a plan recycles into
// the same free list); nodes constructed without a pool (tests, ablation
// benches) fall back to plain allocation and Put becomes a no-op for their
// batches.
type BatchPool struct {
	mu   sync.Mutex
	free []*Batch

	// stats (monotonic, guarded by mu)
	gets   uint64 // total Get calls
	reuses uint64 // Gets served from the free list
}

// maxPooledBatches caps the free list so a burst generation cannot pin
// memory forever; overflow batches are dropped to the GC.
const maxPooledBatches = 256

// maxPooledArenaCap drops batches whose id arena grew pathologically large
// (a generation with huge query sets) instead of keeping the memory pinned.
const maxPooledArenaCap = 1 << 16

// NewBatchPool returns an empty pool.
func NewBatchPool() *BatchPool { return &BatchPool{} }

// Get returns a recycled batch (empty tuples, reset arena) or a freshly
// allocated one, configured for the given stream.
func (p *BatchPool) Get(stream int) *Batch {
	if p == nil {
		return &Batch{Stream: stream, Tuples: make([]Tuple, 0, batchSize)}
	}
	p.mu.Lock()
	p.gets++
	n := len(p.free)
	if n == 0 {
		p.mu.Unlock()
		return &Batch{Stream: stream, Tuples: make([]Tuple, 0, batchSize), pooled: true}
	}
	p.reuses++
	b := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	p.mu.Unlock()
	b.Stream = stream
	return b
}

// Put recycles a batch. Batches not born from a pool are ignored (their
// tuple slices may be shared with test fixtures); oversized arenas and a
// full free list fall through to the GC. The caller must guarantee no live
// references into b.Tuples or its arena remain.
func (p *BatchPool) Put(b *Batch) {
	if p == nil || b == nil || !b.pooled {
		return
	}
	b.reset()
	if b.arena.Cap() > maxPooledArenaCap {
		return
	}
	p.mu.Lock()
	if len(p.free) < maxPooledBatches {
		p.free = append(p.free, b)
	}
	p.mu.Unlock()
}

// Stats reports Get traffic and how much of it was served by reuse.
func (p *BatchPool) Stats() (gets, reuses uint64) {
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gets, p.reuses
}
