package operators

import (
	"sort"

	"shareddb/internal/par"
)

// Data-parallel helpers for the blocking operators' Finish phases (paper
// §4.2: "blocking operators ... can be easily parallelized by partitioning
// the data"). The design constraint throughout is that parallel execution
// must be observationally identical per query to serial execution: sorts
// keep exact stable order, aggregations keep per-group input order (float
// sums accumulate in the same sequence), and joins keep per-key build order.

// minParallelSortLen is the input size below which a parallel sort is not
// worth the fork/join overhead and the serial stable sort runs instead.
const minParallelSortLen = 1024

// minParallelAggLen is the buffered-tuple count below which the group-by
// aggregation and the join build fall back to their serial paths: small
// generations (the common case) would otherwise pay per-tuple entry
// allocations and two fork/joins for nothing. A var so tests can lower it
// to exercise the parallel paths with small inputs.
var minParallelAggLen = 1024

// stableSortTuples sorts tuples by less with the exact semantics of
// sort.SliceStable. With workers > 1 and enough input it runs a partitioned
// sort: contiguous chunks are stable-sorted in parallel (on pool; nil = the
// package default) and then k-way merged, breaking ties toward the lower
// chunk index — which reproduces the serial stable order bit-for-bit.
func stableSortTuples(tuples []sortedTuple, less func(a, b *sortedTuple) bool, workers int, pool *par.Pool) []sortedTuple {
	n := len(tuples)
	if workers <= 1 || n < minParallelSortLen {
		sort.SliceStable(tuples, func(i, j int) bool { return less(&tuples[i], &tuples[j]) })
		return tuples
	}
	bounds := par.Split(n, workers)
	chunks := make([][]sortedTuple, len(bounds)-1)
	pool.Do(workers, len(chunks), func(i int) {
		c := tuples[bounds[i]:bounds[i+1]]
		sort.SliceStable(c, func(a, b int) bool { return less(&c[a], &c[b]) })
		chunks[i] = c
	})
	// K-way merge. Ties resolve to the lowest chunk index (only a strictly
	// smaller head displaces the current best), so equal keys are emitted in
	// original arrival order — the stability contract.
	out := make([]sortedTuple, 0, n)
	heads := make([]int, len(chunks))
	for len(out) < n {
		best := -1
		for ci := range chunks {
			if heads[ci] >= len(chunks[ci]) {
				continue
			}
			if best < 0 || less(&chunks[ci][heads[ci]], &chunks[best][heads[best]]) {
				best = ci
			}
		}
		out = append(out, chunks[best][heads[best]])
		heads[best]++
	}
	return out
}

// Partitioning by key hash (h % parts on the precomputed 64-bit key hash,
// see hashtab.go) means each group/build bucket is owned by exactly one
// worker and no cross-worker combine of per-key state is ever needed.
