package operators

import (
	"sort"
	"testing"

	"shareddb/internal/expr"
	"shareddb/internal/queryset"
	"shareddb/internal/types"
)

// The shared sort has two regimes (see SortOp.Finish): the big shared sort
// when tuples overlap between queries, and the partitioned per-query sort
// when every tuple is query-disjoint (the paper's o = n case). These tests
// pin the partitioned path's correctness: identical per-query results and
// order, including Top-N limits.

func singletonBatch(stream int, rows []int64, qid queryset.QueryID) *Batch {
	b := &Batch{Stream: stream}
	for _, v := range rows {
		b.Tuples = append(b.Tuples, Tuple{
			Row: types.Row{types.NewInt(v)},
			QS:  queryset.Single(qid),
		})
	}
	return b
}

func runSortCycle(t *testing.T, tasks []Task, batches []*Batch) map[queryset.QueryID][]int64 {
	t.Helper()
	op := &SortOp{Streams: map[int]SortStream{
		1: {Keys: []SortKey{{E: &expr.ColRef{Idx: 0}}}, OutStream: 1},
	}}
	node := NewNode(0, "sort", op)
	sink := &SinkOp{}
	sinkNode := NewNode(1, "sink", sink)
	edge := Connect(node, sinkNode)
	edge.SetQueries(1, queryset.Of(func() []queryset.QueryID {
		var ids []queryset.QueryID
		for _, tk := range tasks {
			ids = append(ids, tk.Query)
		}
		return ids
	}()...))

	results := map[queryset.QueryID][]int64{}
	sink.SetHandler(1, func(_ int, tp Tuple) {
		for _, q := range tp.QS.IDs() {
			results[q] = append(results[q], tp.Row[0].AsInt())
		}
	})

	c := &Cycle{Gen: 1, Tasks: tasks, node: node, em: newEmitter(node, 1)}
	op.Start(c)
	for _, b := range batches {
		op.Consume(c, b)
	}
	op.Finish(c)
	// deliver buffered batches directly (bypassing goroutines): flushEOS
	// pushes into the sink's inbox; drain it synchronously.
	c.em.flushEOS()
	for sinkNode.Inbox().Len() > 0 {
		msg, _ := sinkNode.Inbox().Pop()
		if msg.Batch != nil {
			sink.Consume(&Cycle{Gen: 1}, msg.Batch)
		}
	}
	return results
}

func TestSortPartitionedPath(t *testing.T) {
	// every tuple belongs to exactly one query → partitioned regime
	tasks := []Task{
		{Query: 1, Spec: SortSpec{}},
		{Query: 2, Spec: SortSpec{Limit: 3}},
		{Query: 3, Spec: SortSpec{}},
	}
	batches := []*Batch{
		singletonBatch(1, []int64{5, 1, 9, 3}, 1),
		singletonBatch(1, []int64{8, 6, 7, 2, 0}, 2),
		// query 3 gets no tuples at all
	}
	res := runSortCycle(t, tasks, batches)
	if got := res[1]; len(got) != 4 || !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Errorf("Q1 = %v", got)
	}
	want2 := []int64{0, 2, 6}
	if got := res[2]; len(got) != 3 {
		t.Fatalf("Q2 = %v (limit 3)", got)
	} else {
		for i, w := range want2 {
			if got[i] != w {
				t.Errorf("Q2[%d] = %d, want %d", i, got[i], w)
			}
		}
	}
	if len(res[3]) != 0 {
		t.Errorf("Q3 = %v, want empty", res[3])
	}
}

func TestSortSharedPathWithOverlap(t *testing.T) {
	// one tuple subscribed by both queries → big-sort regime
	tasks := []Task{
		{Query: 1, Spec: SortSpec{}},
		{Query: 2, Spec: SortSpec{Limit: 2}},
	}
	shared := &Batch{Stream: 1, Tuples: []Tuple{
		{Row: types.Row{types.NewInt(4)}, QS: queryset.Of(1, 2)},
		{Row: types.Row{types.NewInt(2)}, QS: queryset.Single(1)},
		{Row: types.Row{types.NewInt(1)}, QS: queryset.Of(1, 2)},
		{Row: types.Row{types.NewInt(3)}, QS: queryset.Single(2)},
	}}
	res := runSortCycle(t, tasks, []*Batch{shared})
	want1 := []int64{1, 2, 4}
	if got := res[1]; len(got) != 3 {
		t.Fatalf("Q1 = %v", got)
	} else {
		for i, w := range want1 {
			if got[i] != w {
				t.Errorf("Q1[%d] = %d, want %d", i, got[i], w)
			}
		}
	}
	want2 := []int64{1, 3} // top-2 of {1,3,4}
	if got := res[2]; len(got) != 2 || got[0] != want2[0] || got[1] != want2[1] {
		t.Errorf("Q2 = %v, want %v", res[2], want2)
	}
}

// TestSortRegimesAgree cross-checks the two regimes: the same per-query
// inputs run once as disjoint singletons (partitioned) and once with a
// dummy shared tuple forcing the big sort; per-query outputs must agree on
// the singleton data.
func TestSortRegimesAgree(t *testing.T) {
	tasks := []Task{
		{Query: 1, Spec: SortSpec{Limit: 5}},
		{Query: 2, Spec: SortSpec{}},
	}
	data1 := []int64{42, 7, 19, 3, 88, 21, 5}
	data2 := []int64{100, 1, 50}

	partitioned := runSortCycle(t, tasks, []*Batch{
		singletonBatch(1, data1, 1),
		singletonBatch(1, data2, 2),
	})
	// force the shared regime by adding one overlapping tuple, then ignore
	// its value in the comparison by picking it larger than all data
	sharedTuple := &Batch{Stream: 1, Tuples: []Tuple{
		{Row: types.Row{types.NewInt(1000)}, QS: queryset.Of(1, 2)},
	}}
	shared := runSortCycle(t, tasks, []*Batch{
		singletonBatch(1, data1, 1),
		singletonBatch(1, data2, 2),
		sharedTuple,
	})
	for q := queryset.QueryID(1); q <= 2; q++ {
		a, b := partitioned[q], shared[q]
		// drop the sentinel 1000 from the shared run (it sorts last unless
		// cut by Q1's limit)
		filtered := b[:0]
		for _, v := range b {
			if v != 1000 {
				filtered = append(filtered, v)
			}
		}
		limit := len(a)
		if len(filtered) < limit {
			limit = len(filtered)
		}
		for i := 0; i < limit; i++ {
			if a[i] != filtered[i] {
				t.Errorf("Q%d: regimes disagree at %d: %v vs %v", q, i, a, filtered)
				break
			}
		}
	}
}
