package operators

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"shareddb/internal/expr"
	"shareddb/internal/queryset"
	"shareddb/internal/types"
)

// Tests for the data-parallel Finish phases: at any worker count the
// per-query output of every blocking operator must be identical to serial
// execution — identical rows, identical per-query order where the operator
// defines one (sort), identical multisets where it does not (group-by).

// driveOp runs one operator cycle synchronously and returns every emitted
// row per query, in emission order.
func driveOp(op Operator, tasks []Task, workers int, drive func(c *Cycle)) map[queryset.QueryID][]types.Row {
	node := NewNode(0, "op", op)
	sink := &SinkOp{}
	sinkNode := NewNode(1, "sink", sink)
	edge := Connect(node, sinkNode)
	ids := make([]queryset.QueryID, 0, len(tasks))
	for _, tk := range tasks {
		ids = append(ids, tk.Query)
	}
	edge.SetQueries(1, queryset.Of(ids...))
	results := map[queryset.QueryID][]types.Row{}
	sink.SetHandler(1, func(_ int, tp Tuple) {
		for _, q := range tp.QS.IDs() {
			results[q] = append(results[q], tp.Row)
		}
	})
	c := &Cycle{Gen: 1, Tasks: tasks, Workers: workers, node: node, em: newEmitter(node, 1)}
	c.all = queryset.Of(ids...)
	op.Start(c)
	drive(c)
	op.Finish(c)
	c.em.flushEOS()
	for sinkNode.Inbox().Len() > 0 {
		msg, _ := sinkNode.Inbox().Pop()
		if msg.Batch != nil {
			sink.Consume(&Cycle{Gen: 1}, msg.Batch)
		}
	}
	return results
}

func rowsKey(r types.Row) string { return types.EncodeKey(r...) }

func sortedKeys(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = rowsKey(r)
	}
	sort.Strings(out)
	return out
}

func compareExact(t *testing.T, label string, serial, parallel map[queryset.QueryID][]types.Row) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("%s: %d queries serial vs %d parallel", label, len(serial), len(parallel))
	}
	for q, s := range serial {
		p := parallel[q]
		if len(s) != len(p) {
			t.Fatalf("%s query %d: %d rows serial vs %d parallel", label, q, len(s), len(p))
		}
		for i := range s {
			if rowsKey(s[i]) != rowsKey(p[i]) {
				t.Fatalf("%s query %d row %d: %v serial vs %v parallel", label, q, i, s[i], p[i])
			}
		}
	}
}

func compareMultiset(t *testing.T, label string, serial, parallel map[queryset.QueryID][]types.Row) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("%s: %d queries serial vs %d parallel", label, len(serial), len(parallel))
	}
	for q, s := range serial {
		sk, pk := sortedKeys(s), sortedKeys(parallel[q])
		if len(sk) != len(pk) {
			t.Fatalf("%s query %d: %d rows serial vs %d parallel", label, q, len(sk), len(pk))
		}
		for i := range sk {
			if sk[i] != pk[i] {
				t.Fatalf("%s query %d: row multiset differs at %d", label, q, i)
			}
		}
	}
}

// stableSortTuples with workers > 1 must reproduce sort.SliceStable
// bit-for-bit, including the order of equal keys (stability).
func TestStableSortTuplesMatchesSliceStable(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 3 * minParallelSortLen
	mk := func() []sortedTuple {
		out := make([]sortedTuple, n)
		for i := range out {
			key := types.NewInt(int64(r.Intn(40))) // heavy duplication → stability matters
			out[i] = sortedTuple{
				stream: 1,
				t:      Tuple{Row: types.Row{key, types.NewInt(int64(i))}, QS: queryset.Single(1)},
				keys:   []types.Value{key},
			}
		}
		return out
	}
	base := mk()
	less := func(a, b *sortedTuple) bool { return a.keys[0].Compare(b.keys[0]) < 0 }

	want := append([]sortedTuple(nil), base...)
	sort.SliceStable(want, func(i, j int) bool { return less(&want[i], &want[j]) })

	for _, workers := range []int{2, 3, 4, 7} {
		got := stableSortTuples(append([]sortedTuple(nil), base...), less, workers, nil)
		for i := range want {
			if want[i].t.Row[1].AsInt() != got[i].t.Row[1].AsInt() {
				t.Fatalf("workers=%d: position %d holds tuple %d, want %d (stability broken)",
					workers, i, got[i].t.Row[1].AsInt(), want[i].t.Row[1].AsInt())
			}
		}
	}
}

func TestSortFinishParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	op := func() *SortOp {
		return &SortOp{Streams: map[int]SortStream{
			1: {Keys: []SortKey{{E: &expr.ColRef{Idx: 0}}}, OutStream: 1},
		}}
	}
	tasks := []Task{
		{Query: 1, Spec: SortSpec{}},
		{Query: 2, Spec: SortSpec{Limit: 17}},
		{Query: 3, Spec: SortSpec{Limit: 3}},
	}
	// Shared regime: overlapping query sets, enough tuples for the parallel
	// sort path.
	mkShared := func() []*Batch {
		var batches []*Batch
		for b := 0; b < 4; b++ {
			batch := &Batch{Stream: 1}
			for i := 0; i < minParallelSortLen; i++ {
				qs := queryset.Of(1, 2)
				if i%3 == 0 {
					qs = queryset.Of(1, 2, 3)
				}
				batch.Tuples = append(batch.Tuples, Tuple{
					Row: types.Row{types.NewInt(int64(r.Intn(200)))},
					QS:  qs,
				})
			}
			batches = append(batches, batch)
		}
		return batches
	}
	sharedBatches := mkShared()
	feed := func(batches []*Batch) func(c *Cycle) {
		return func(c *Cycle) {
			for _, b := range batches {
				c.node.Op.Consume(c, b)
			}
		}
	}
	serial := driveOp(op(), tasks, 1, feed(sharedBatches))
	for _, workers := range []int{2, 4} {
		parallel := driveOp(op(), tasks, workers, feed(sharedBatches))
		compareExact(t, fmt.Sprintf("shared sort workers=%d", workers), serial, parallel)
	}

	// Partitioned regime: disjoint singleton query sets.
	mkSingleton := func() []*Batch {
		batch := &Batch{Stream: 1}
		for i := 0; i < 2000; i++ {
			batch.Tuples = append(batch.Tuples, Tuple{
				Row: types.Row{types.NewInt(int64(r.Intn(500)))},
				QS:  queryset.Single(queryset.QueryID(1 + i%3)),
			})
		}
		return []*Batch{batch}
	}
	singletonBatches := mkSingleton()
	serial = driveOp(op(), tasks, 1, feed(singletonBatches))
	for _, workers := range []int{2, 4} {
		parallel := driveOp(op(), tasks, workers, feed(singletonBatches))
		compareExact(t, fmt.Sprintf("partitioned sort workers=%d", workers), serial, parallel)
	}
}

func TestGroupFinishParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	op := func() *GroupOp {
		return &GroupOp{
			Streams: map[int]GroupStream{
				1: {GroupCols: []int{0}, AggArgs: []expr.Expr{nil, &expr.ColRef{Idx: 1}, &expr.ColRef{Idx: 2}, &expr.ColRef{Idx: 1}, &expr.ColRef{Idx: 1}}},
			},
			Aggs: []AggDef{
				{Kind: AggCount},
				{Kind: AggSum},
				{Kind: AggAvg}, // float inputs: parallel must keep accumulation order
				{Kind: AggMin},
				{Kind: AggMax},
			},
			OutStream: 2,
		}
	}
	tasks := []Task{
		{Query: 1, Spec: GroupSpec{}},
		{Query: 2, Spec: GroupSpec{}},
		{Query: 3, Spec: GroupSpec{Having: &expr.Cmp{Op: expr.GT, L: &expr.ColRef{Idx: 1}, R: &expr.Const{Val: types.NewInt(5)}}}},
	}
	var batches []*Batch
	for b := 0; b < 9; b++ {
		batch := &Batch{Stream: 1}
		for i := 0; i < 500; i++ {
			var qs queryset.Set
			switch r.Intn(3) {
			case 0:
				qs = queryset.Of(1, 2, 3)
			case 1:
				qs = queryset.Of(queryset.QueryID(1 + r.Intn(3)))
			default:
				qs = queryset.Of(1, 3)
			}
			v := types.Null
			if r.Intn(8) != 0 {
				v = types.NewInt(int64(r.Intn(50)))
			}
			batch.Tuples = append(batch.Tuples, Tuple{
				Row: types.Row{types.NewInt(int64(r.Intn(30))), v, types.NewFloat(r.Float64())},
				QS:  qs,
			})
		}
		batches = append(batches, batch)
	}
	feed := func(c *Cycle) {
		for _, b := range batches {
			c.node.Op.Consume(c, b)
		}
	}
	serial := driveOp(op(), tasks, 1, feed)
	for _, workers := range []int{2, 4, 7} {
		parallel := driveOp(op(), tasks, workers, feed)
		// group emission order is hash-map order in both regimes: compare as
		// multisets. Rows embed float sums, so identical bytes also prove the
		// accumulation order was preserved.
		compareMultiset(t, fmt.Sprintf("group workers=%d", workers), serial, parallel)
	}
}

func TestJoinParallelBuildMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	const innerStream, outerStream, outStream = 1, 2, 3
	mkOp := func() (*HashJoinOp, *Node, *Edge, *Edge) {
		op := &HashJoinOp{
			InnerKeyCols: []int{0},
			InnerStream:  innerStream,
			Outers:       map[int]JoinOuter{outerStream: {KeyCols: []int{0}, OutStream: outStream}},
		}
		node := NewNode(0, "join", op)
		innerSrc := NewNode(10, "inner", &SinkOp{})
		innerEdge := Connect(innerSrc, node)
		op.SetInnerEdge(innerEdge)
		sinkNode := NewNode(1, "sink", &SinkOp{})
		outEdge := Connect(node, sinkNode)
		return op, node, innerEdge, outEdge
	}
	var innerBatches, outerBatches []*Batch
	for b := 0; b < 6; b++ {
		ib := &Batch{Stream: innerStream}
		ob := &Batch{Stream: outerStream}
		for i := 0; i < 300; i++ {
			ib.Tuples = append(ib.Tuples, Tuple{
				Row: types.Row{types.NewInt(int64(r.Intn(60))), types.NewInt(int64(b*1000 + i))},
				QS:  queryset.Of(1, queryset.QueryID(1+r.Intn(2))),
			})
			ob.Tuples = append(ob.Tuples, Tuple{
				Row: types.Row{types.NewInt(int64(r.Intn(60))), types.NewInt(int64(-b*1000 - i))},
				QS:  queryset.Of(queryset.QueryID(1 + r.Intn(2))),
			})
		}
		innerBatches = append(innerBatches, ib)
		outerBatches = append(outerBatches, ob)
	}
	runJoin := func(workers int) map[queryset.QueryID][]types.Row {
		op, node, innerEdge, outEdge := mkOp()
		outEdge.SetQueries(1, queryset.Of(1, 2))
		results := map[queryset.QueryID][]types.Row{}
		sinkOp := outEdge.To.Op.(*SinkOp)
		sinkOp.SetHandler(1, func(_ int, tp Tuple) {
			for _, q := range tp.QS.IDs() {
				results[q] = append(results[q], tp.Row)
			}
		})
		c := &Cycle{Gen: 1, Workers: workers, node: node, em: newEmitter(node, 1)}
		op.Start(c)
		// outers arriving before the build completes are buffered
		op.Consume(c, outerBatches[0])
		for _, b := range innerBatches {
			op.Consume(c, b)
		}
		op.EdgeEOS(c, innerEdge)
		for _, b := range outerBatches[1:] {
			op.Consume(c, b)
		}
		op.Finish(c)
		c.em.flushEOS()
		for outEdge.To.Inbox().Len() > 0 {
			msg, _ := outEdge.To.Inbox().Pop()
			if msg.Batch != nil {
				sinkOp.Consume(&Cycle{Gen: 1}, msg.Batch)
			}
		}
		return results
	}
	serial := runJoin(1)
	if len(serial[1]) == 0 || len(serial[2]) == 0 {
		t.Fatalf("join smoke: serial produced %d/%d rows", len(serial[1]), len(serial[2]))
	}
	for _, workers := range []int{2, 4} {
		parallel := runJoin(workers)
		// probe order and per-key build order are both preserved, so the
		// comparison is exact, not multiset.
		compareExact(t, fmt.Sprintf("join workers=%d", workers), serial, parallel)
	}
}

// TestJoinParallelBuildShrinkingWorkers reuses ONE join operator across
// cycles whose worker budget shrinks (4 → 2 → 1) — exactly what the
// adaptive worker budget does between generations — and checks every cycle
// produces the serial result. Pins that probes select shards with the same
// modulus the build routed with (a stale, larger shard slice from an
// earlier cycle would silently drop matches).
func TestJoinParallelBuildShrinkingWorkers(t *testing.T) {
	old := minParallelAggLen
	minParallelAggLen = 1
	t.Cleanup(func() { minParallelAggLen = old })
	const innerStream, outerStream, outStream = 1, 2, 3
	op := &HashJoinOp{
		InnerKeyCols: []int{0},
		InnerStream:  innerStream,
		Outers:       map[int]JoinOuter{outerStream: {KeyCols: []int{0}, OutStream: outStream}},
	}
	node := NewNode(0, "join", op)
	innerSrc := NewNode(10, "inner", &SinkOp{})
	innerEdge := Connect(innerSrc, node)
	op.SetInnerEdge(innerEdge)
	sinkNode := NewNode(1, "sink", &SinkOp{})
	outEdge := Connect(node, sinkNode)
	sinkOp := sinkNode.Op.(*SinkOp)

	mkBatches := func() (*Batch, *Batch) {
		ib := &Batch{Stream: innerStream}
		ob := &Batch{Stream: outerStream}
		for i := 0; i < 200; i++ {
			ib.Tuples = append(ib.Tuples, Tuple{
				Row: types.Row{types.NewInt(int64(i % 37)), types.NewInt(int64(i))},
				QS:  queryset.Of(1),
			})
			ob.Tuples = append(ob.Tuples, Tuple{
				Row: types.Row{types.NewInt(int64(i % 37)), types.NewInt(int64(-i))},
				QS:  queryset.Of(1),
			})
		}
		return ib, ob
	}
	runCycle := func(gen uint64, workers int) int {
		outEdge.SetQueries(gen, queryset.Of(1))
		rows := 0
		sinkOp.SetHandler(gen, func(_ int, _ Tuple) { rows++ })
		c := &Cycle{Gen: gen, Workers: workers, node: node, em: newEmitter(node, gen)}
		op.Start(c)
		ib, ob := mkBatches()
		op.Consume(c, ib)
		op.EdgeEOS(c, innerEdge)
		op.Consume(c, ob)
		op.Finish(c)
		c.em.flushEOS()
		for sinkNode.Inbox().Len() > 0 {
			msg, _ := sinkNode.Inbox().Pop()
			if msg.Batch != nil {
				sinkOp.Consume(&Cycle{Gen: gen}, msg.Batch)
			}
		}
		return rows
	}
	want := 0
	for gen, workers := range []int{4, 2, 1, 4} {
		got := runCycle(uint64(gen)+1, workers)
		if gen == 0 {
			want = got
			if want == 0 {
				t.Fatal("smoke: first cycle joined nothing")
			}
			continue
		}
		if got != want {
			t.Errorf("cycle %d (workers=%d): %d join rows, want %d (shard modulus mismatch?)", gen+1, workers, got, want)
		}
	}
}

func BenchmarkSortFinishWorkers(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	n := 200000
	tuples := make([]Tuple, n)
	for i := range tuples {
		tuples[i] = Tuple{Row: types.Row{types.NewInt(int64(r.Intn(1 << 30)))}, QS: queryset.Of(1, 2)}
	}
	tasks := []Task{{Query: 1, Spec: SortSpec{}}, {Query: 2, Spec: SortSpec{Limit: 100}}}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				op := &SortOp{Streams: map[int]SortStream{1: {Keys: []SortKey{{E: &expr.ColRef{Idx: 0}}}, OutStream: 1}}}
				node := NewNode(0, "sort", op)
				sinkNode := NewNode(1, "sink", &SinkOp{})
				edge := Connect(node, sinkNode)
				edge.SetQueries(1, queryset.Of(1, 2))
				c := &Cycle{Gen: 1, Tasks: tasks, Workers: workers, node: node, em: newEmitter(node, 1)}
				op.Start(c)
				op.Consume(c, &Batch{Stream: 1, Tuples: tuples})
				b.StartTimer()
				op.Finish(c)
				b.StopTimer()
				// drop the sink's buffered output between iterations
				for sinkNode.Inbox().Len() > 0 {
					sinkNode.Inbox().Pop()
				}
				b.StartTimer()
			}
		})
	}
}
