package operators

import (
	"shareddb/internal/expr"
	"shareddb/internal/par"
	"shareddb/internal/queryset"
	"shareddb/internal/storage"
	"shareddb/internal/types"
)

// Shared joins (paper §3.3, Figure 3): one big join serves every concurrent
// query. The build side holds the union of the tuples any query wants; the
// probe matches on the join key AND a non-empty query-set intersection
// ("R.id = S.id && R.query_id = S.query_id" in Figure 3); matched tuples
// carry the intersection downstream.
//
// Because outer tuples can arrive from different producers with different
// schemas (Figure 2: join 2 receives Orders⋈Users tuples for Q3 and bare
// Orders tuples for Q4), the operator holds per-stream key extractors and
// output stream ids.

// JoinOuter configures one outer (probe-side) stream of a join.
type JoinOuter struct {
	KeyCols   []int // key columns in the outer stream's schema
	OutStream int   // stream id of concat(outer, inner) results
}

// HashJoinOp is the shared hash join. The inner (build) side is the single
// producer edge InnerEdge; all other producer edges are outer streams.
//
// The build table is keyed by a precomputed 64-bit hash of the key columns
// (open addressing, collision chains verified by value comparison) instead
// of boxed key strings, and probe-side query-set intersections go through a
// reusable scratch buffer — the steady-state probe path allocates only its
// output rows.
//
// ByQueryID selects the alternative "set-based" join of §3.3 that hashes the
// build side on query_id instead of the key (Helmer & Moerkotte [16]); it
// pays off when per-query inner sets are tiny and is exercised by ablation
// benchmark A3.
type HashJoinOp struct {
	InnerKeyCols []int // key columns in the inner stream's schema
	InnerStream  int
	Outers       map[int]JoinOuter // by outer stream id
	ByQueryID    bool

	innerEdge *Edge // producer edge delivering the build side (set by the plan)

	// per-cycle state, reused across cycles (a node runs one cycle at a
	// time)
	build     joinTable                    // serial build table
	buildQID  map[queryset.QueryID][]Tuple // query id → inner tuples
	pending   []*Batch                     // outer batches buffered until build completes
	innerDone bool

	// parallel build state (Workers > 1): inner batches are buffered as they
	// stream in and the hash table is built in parallel at inner EOS, as
	// key-hash shards so probes stay lock-free lookups.
	innerPending []*Batch
	buildShards  []joinTable
	shardsActive bool

	qsScratch []queryset.QueryID // probe intersection scratch
	single    [1]queryset.QueryID

	// inc is the persistent build-side NodeState (Config.IncrementalState):
	// a RowID-ordered build table owned by the node across generations,
	// primed from a table scan and maintained in place from generation write
	// deltas. incActive marks cycles probing against it; the rebuild path
	// never touches it.
	inc        joinTable
	incScratch []queryset.QueryID
	incActive  bool
}

// JoinSpec is the per-query activation of a join. Shared hash joins need no
// per-query state; the type exists so plans can treat all operators
// uniformly.
type JoinSpec struct{}

// Start resets the cycle state. With an incremental activation the inner
// side is served from the maintained NodeState instead of the (silenced)
// inner edge: the state is primed or delta-maintained here, and the cycle
// starts in the probe phase.
func (j *HashJoinOp) Start(c *Cycle) {
	j.build.reset(j.InnerKeyCols)
	j.buildQID = map[queryset.QueryID][]Tuple{}
	clear(j.pending)
	j.pending = j.pending[:0]
	j.innerDone = false
	j.innerPending = j.innerPending[:0]
	j.shardsActive = false
	j.incActive = false
	if c.Inc != nil && !j.ByQueryID {
		j.startIncremental(c)
	}
}

// startIncremental brings the persistent build table up to the cycle's
// snapshot. Prime scans the base table in RowID order (the same order the
// shared ClockScan feeds a rebuild); reuse applies the generation delta:
// retract old versions, insert new ones, keeping per-key chains RowID-
// ordered so probe emission is byte-identical to a rebuild.
func (j *HashJoinOp) startIncremental(c *Cycle) {
	ic := c.Inc
	switch ic.Mode {
	case IncPrime:
		j.inc.reset(j.InnerKeyCols)
		scratch := j.incScratch
		ic.Table.ScanVisible(c.TS, func(rid storage.RowID, row types.Row) bool {
			var qs queryset.Set
			qs, scratch = evalIncPreds(ic.Preds, row, scratch)
			if !qs.Empty() {
				j.inc.insertRID(hashValues(row, j.InnerKeyCols), Tuple{Row: row, QS: qs}, rid)
			}
			return true
		})
		j.incScratch = scratch
	case IncReuse:
		if td := ic.Delta; td != nil {
			scratch := j.incScratch
			var qs queryset.Set
			for _, dr := range td.Deleted {
				qs, scratch = evalIncPreds(ic.Preds, dr.Row, scratch)
				if !qs.Empty() {
					j.inc.removeRID(hashValues(dr.Row, j.InnerKeyCols), dr.Row, dr.RID)
				}
			}
			for _, ur := range td.Updated {
				qs, scratch = evalIncPreds(ic.Preds, ur.Old, scratch)
				if !qs.Empty() {
					j.inc.removeRID(hashValues(ur.Old, j.InnerKeyCols), ur.Old, ur.RID)
				}
				qs, scratch = evalIncPreds(ic.Preds, ur.New, scratch)
				if !qs.Empty() {
					j.inc.insertRID(hashValues(ur.New, j.InnerKeyCols), Tuple{Row: ur.New, QS: qs}, ur.RID)
				}
			}
			for _, dr := range td.Inserted {
				qs, scratch = evalIncPreds(ic.Preds, dr.Row, scratch)
				if !qs.Empty() {
					j.inc.insertRID(hashValues(dr.Row, j.InnerKeyCols), Tuple{Row: dr.Row, QS: qs}, dr.RID)
				}
			}
			j.incScratch = scratch
		}
	}
	j.incActive = true
	j.innerDone = true // probes run immediately against the maintained table
}

// Consume builds from inner batches and probes (or buffers) outer batches.
// Inner tuples stream into the build phase as they arrive (§3.2: "an
// operator can stream its output into the build phase of a hash join").
// Buffered and built-from batches are retained: the build table and pending
// lists alias their tuples until the cycle finishes.
func (j *HashJoinOp) Consume(c *Cycle, b *Batch) {
	if b.Stream == j.InnerStream {
		c.Retain(b)
		if c.Workers > 1 && !j.ByQueryID {
			// Parallel regime: buffer; the build happens in parallel at
			// inner EOS (buildParallel).
			j.innerPending = append(j.innerPending, b)
			return
		}
		for _, t := range b.Tuples {
			if j.ByQueryID {
				for _, qid := range t.QS.IDs() {
					j.buildQID[qid] = append(j.buildQID[qid], t)
				}
			} else {
				j.build.insert(hashValues(t.Row, j.InnerKeyCols), t)
			}
		}
		return
	}
	if !j.innerDone {
		c.Retain(b)
		j.pending = append(j.pending, b)
		return
	}
	j.probeBatch(c, b)
}

// EdgeEOS unblocks probing once the inner side has been fully built.
func (j *HashJoinOp) EdgeEOS(c *Cycle, e *Edge) {
	if e == nil || j.innerDone {
		return
	}
	// The inner side is complete when the edge carrying InnerStream
	// finishes. Outer EOS arriving earlier must not trigger the drain.
	if !j.isInnerEdge(e) {
		return
	}
	j.innerDone = true
	j.buildParallel(c)
	for _, b := range j.pending {
		j.probeBatch(c, b)
	}
	clear(j.pending)
	j.pending = j.pending[:0]
}

// buildParallel turns the buffered inner batches into key-hash shards, in
// parallel (the parallel join build of paper §4.2). Like the group-by's
// partitioned aggregation, it is a two-step partition/build: workers first
// hash keys over contiguous chunks of the buffered batches and route
// tuples to their key-hash shard; then each shard is built by a single
// worker, appending tuples in chunk order — so every key's match list holds
// tuples in the same arrival order the serial build produces, and probe
// emission order is unchanged. No-op when nothing was buffered.
func (j *HashJoinOp) buildParallel(c *Cycle) {
	if len(j.innerPending) == 0 {
		return
	}
	total := 0
	for _, b := range j.innerPending {
		total += len(b.Tuples)
	}
	if total < minParallelAggLen {
		// Small build side: a serial build into the ordinary table beats the
		// partition/build fork/join (identical semantics either way).
		for _, b := range j.innerPending {
			for _, t := range b.Tuples {
				j.build.insert(hashValues(t.Row, j.InnerKeyCols), t)
			}
		}
		j.innerPending = j.innerPending[:0]
		return
	}
	workers := c.Workers
	type entry struct {
		h uint64
		t Tuple
	}
	chunkBounds := par.Split(len(j.innerPending), workers)
	nchunks := len(chunkBounds) - 1
	routed := make([][][]entry, nchunks) // [chunk][shard] → entries
	c.Pool.Do(workers, nchunks, func(ci int) {
		shards := make([][]entry, workers)
		for _, b := range j.innerPending[chunkBounds[ci]:chunkBounds[ci+1]] {
			for _, t := range b.Tuples {
				h := hashValues(t.Row, j.InnerKeyCols)
				s := int(h % uint64(workers))
				shards[s] = append(shards[s], entry{h: h, t: t})
			}
		}
		routed[ci] = shards
	})
	// Size the shard slice to exactly `workers`: probes select a shard by
	// h % len(buildShards), which must be the same modulus the routing
	// above used (a stale larger slice from a previous bigger budget would
	// silently drop matches).
	if cap(j.buildShards) < workers {
		j.buildShards = append(j.buildShards[:cap(j.buildShards)],
			make([]joinTable, workers-cap(j.buildShards))...)
	}
	j.buildShards = j.buildShards[:workers]
	shards := j.buildShards
	c.Pool.Do(workers, workers, func(si int) {
		shards[si].reset(j.InnerKeyCols)
		for ci := 0; ci < nchunks; ci++ {
			for _, e := range routed[ci][si] {
				shards[si].insert(e.h, e.t)
			}
		}
	})
	j.shardsActive = true
	j.innerPending = j.innerPending[:0]
}

// table returns the build table responsible for key hash h under any build
// regime (maintained NodeState, parallel shards, or the serial cycle table).
func (j *HashJoinOp) table(h uint64) *joinTable {
	if j.incActive {
		return &j.inc
	}
	if j.shardsActive {
		return &j.buildShards[int(h%uint64(len(j.buildShards)))]
	}
	return &j.build
}

// SetInnerEdge marks which producer edge carries the build side; called by
// the plan compiler after wiring.
func (j *HashJoinOp) SetInnerEdge(e *Edge) { j.innerEdge = e }

func (j *HashJoinOp) isInnerEdge(e *Edge) bool { return j.innerEdge == e }

var _ Operator = (*HashJoinOp)(nil)

// Finish probes any outers still buffered (possible when the inner edge was
// idle this generation) and releases cycle state (dropping tuple
// references so the retained batches can recycle without pinned rows).
func (j *HashJoinOp) Finish(c *Cycle) {
	j.buildParallel(c) // inner batches with no EOS seen yet (defensive)
	for _, b := range j.pending {
		j.probeBatch(c, b)
	}
	clear(j.pending)
	j.pending = j.pending[:0]
	j.build.reset(j.InnerKeyCols)
	j.buildQID = nil
	for i := range j.buildShards {
		j.buildShards[i].reset(j.InnerKeyCols)
	}
	j.shardsActive = false
	clear(j.innerPending)
	j.innerPending = j.innerPending[:0]
}

func (j *HashJoinOp) probeBatch(c *Cycle, b *Batch) {
	cfg, ok := j.Outers[b.Stream]
	if !ok {
		return
	}
	for ti := range b.Tuples {
		t := &b.Tuples[ti]
		if j.ByQueryID {
			for _, qid := range t.QS.IDs() {
				for _, it := range j.buildQID[qid] {
					if rowsEqualOn(t.Row, cfg.KeyCols, it.Row, j.InnerKeyCols) {
						j.single[0] = qid
						c.Emit(cfg.OutStream, t.Row.Concat(it.Row), queryset.FromSorted(j.single[:1]))
					}
				}
			}
			continue
		}
		h := hashValues(t.Row, cfg.KeyCols)
		tab := j.table(h)
		for ei := tab.lookup(h, t.Row, cfg.KeyCols); ei >= 0; ei = tab.entries[ei].next {
			it := &tab.entries[ei].t
			qs := t.QS.IntersectInto(it.QS, j.qsScratch)
			j.qsScratch = qs.IDs()
			if !qs.Empty() {
				c.Emit(cfg.OutStream, t.Row.Concat(it.Row), qs)
			}
		}
	}
}

// IndexJoinOp is the shared index nested-loop join (paper §4.4): outer
// tuples probe a B-tree index of a base table directly. Per-query predicates
// on the inner table (which a hash join would have applied in the inner
// child scan) are evaluated as per-query residuals against fetched rows.
type IndexJoinOp struct {
	Table  *storage.Table
	Index  *storage.Index
	Outers map[int]JoinOuter // by outer stream id

	// per-cycle: residual predicate per query over the inner table schema
	// (dense slice indexed by generation-scoped query id)
	residuals []expr.Expr

	keyBuf    []types.Value      // probe key scratch
	qsScratch []queryset.QueryID // residual routing scratch
}

// IndexJoinSpec is the per-query activation: the bound predicate this query
// imposes on the inner table (nil = none).
type IndexJoinSpec struct {
	InnerResidual expr.Expr
}

// Start collects the per-query inner residuals.
func (j *IndexJoinOp) Start(c *Cycle) {
	j.residuals = denseExprs(c.Tasks, func(spec interface{}) expr.Expr {
		s, _ := spec.(IndexJoinSpec)
		return s.InnerResidual
	})
}

// Consume probes the index for every outer tuple. Each probe runs under the
// inner table's read lock (storage.IndexSeekAt): with pipelined
// generations, later generations' writes land while this cycle runs, so
// the tree and version chains cannot be traversed lock-free.
func (j *IndexJoinOp) Consume(c *Cycle, b *Batch) {
	cfg, ok := j.Outers[b.Stream]
	if !ok {
		return
	}
	if cap(j.keyBuf) < len(cfg.KeyCols) {
		j.keyBuf = make([]types.Value, len(cfg.KeyCols))
	}
	key := j.keyBuf[:len(cfg.KeyCols)]
	for ti := range b.Tuples {
		t := &b.Tuples[ti]
		for i, col := range cfg.KeyCols {
			key[i] = t.Row[col]
		}
		j.Table.IndexSeekAt(j.Index, key, c.TS, func(_ storage.RowID, inner types.Row) bool {
			qs := t.QS.RetainInto(func(q queryset.QueryID) bool {
				if int(q) >= len(j.residuals) {
					return false
				}
				return expr.TruthyEval(j.residuals[q], inner, nil)
			}, j.qsScratch)
			j.qsScratch = qs.IDs()
			if !qs.Empty() {
				c.Emit(cfg.OutStream, t.Row.Concat(inner), qs)
			}
			return true
		})
	}
}

// Finish releases cycle state.
func (j *IndexJoinOp) Finish(*Cycle) {
	j.residuals = nil
}
