package operators

import (
	"sort"
	"sync"
	"testing"

	"shareddb/internal/expr"
	"shareddb/internal/queryset"
	"shareddb/internal/storage"
	"shareddb/internal/types"
)

// --- test fixtures ---

func newTestDB(t *testing.T) *storage.Database {
	t.Helper()
	db, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	users, err := db.CreateTable("users", types.NewSchema(
		types.Column{Qualifier: "users", Name: "user_id", Kind: types.KindInt},
		types.Column{Qualifier: "users", Name: "country", Kind: types.KindString},
	))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := users.SetPrimaryKey("user_id"); err != nil {
		t.Fatal(err)
	}
	orders, err := db.CreateTable("orders", types.NewSchema(
		types.Column{Qualifier: "orders", Name: "o_id", Kind: types.KindInt},
		types.Column{Qualifier: "orders", Name: "o_user_id", Kind: types.KindInt},
		types.Column{Qualifier: "orders", Name: "o_status", Kind: types.KindString},
	))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := orders.SetPrimaryKey("o_id"); err != nil {
		t.Fatal(err)
	}
	var ops []storage.WriteOp
	for i := int64(0); i < 10; i++ {
		country := "CH"
		if i%2 == 1 {
			country = "DE"
		}
		ops = append(ops, storage.WriteOp{Table: "users", Kind: storage.WInsert,
			Row: types.Row{types.NewInt(i), types.NewString(country)}})
	}
	for i := int64(0); i < 30; i++ {
		status := "OK"
		if i%3 == 0 {
			status = "PENDING"
		}
		ops = append(ops, storage.WriteOp{Table: "orders", Kind: storage.WInsert,
			Row: types.Row{types.NewInt(i), types.NewInt(i % 10), types.NewString(status)}})
	}
	results, _ := db.ApplyOps(ops)
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	return db
}

// testRig wires nodes, runs generations, and collects sink output.
type testRig struct {
	t     *testing.T
	nodes []*Node
	sink  *Node
	sop   *SinkOp

	mu      sync.Mutex
	results map[queryset.QueryID][]types.Row
	streams map[queryset.QueryID]int
	done    chan struct{}
}

func newRig(t *testing.T) *testRig {
	r := &testRig{t: t, sop: &SinkOp{}}
	r.sink = NewNode(999, "sink", r.sop)
	return r
}

func (r *testRig) node(name string, op Operator) *Node {
	n := NewNode(len(r.nodes), name, op)
	r.nodes = append(r.nodes, n)
	return n
}

func (r *testRig) start() {
	for _, n := range r.nodes {
		n.Start()
	}
	r.sink.Start()
}

func (r *testRig) stop() {
	for _, n := range r.nodes {
		n.Stop()
	}
	r.sink.Stop()
}

// runGen activates the given nodes with tasks and edge query-sets, runs one
// generation to completion, and returns per-query result rows.
func (r *testRig) runGen(gen, ts uint64, tasks map[*Node][]Task, edgeQueries map[*Edge][]queryset.QueryID) map[queryset.QueryID][]types.Row {
	r.mu.Lock()
	r.results = map[queryset.QueryID][]types.Row{}
	r.streams = map[queryset.QueryID]int{}
	r.mu.Unlock()
	r.done = make(chan struct{})

	for e, qs := range edgeQueries {
		e.SetQueries(gen, queryset.Of(qs...))
	}
	r.sop.SetHandler(gen, func(stream int, t Tuple) {
		r.mu.Lock()
		for _, q := range t.QS.IDs() {
			r.results[q] = append(r.results[q], t.Row)
			r.streams[q] = stream
		}
		r.mu.Unlock()
	})

	activeProducers := func(n *Node) int {
		c := 0
		for _, e := range n.Producers {
			if !e.QueriesFor(gen).Empty() {
				c++
			}
		}
		return c
	}
	// activate sink first so it is waiting, then interior nodes, then roots
	r.sink.Inbox().Push(Message{Ctrl: &CycleStart{
		Gen: gen, TS: ts, ActiveProducers: activeProducers(r.sink),
		OnDone: func() { close(r.done) },
	}})
	for n, ntasks := range tasks {
		n.Inbox().Push(Message{Ctrl: &CycleStart{
			Gen: gen, TS: ts, Tasks: ntasks, ActiveProducers: activeProducers(n),
		}})
	}
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[queryset.QueryID][]types.Row{}
	for q, rows := range r.results {
		out[q] = rows
	}
	return out
}

func eqExpr(col int, v types.Value) expr.Expr {
	return &expr.Cmp{Op: expr.EQ, L: &expr.ColRef{Idx: col}, R: &expr.Const{Val: v}}
}

// --- tests ---

func TestScanToSink(t *testing.T) {
	db := newTestDB(t)
	rig := newRig(t)
	scan := rig.node("scan(users)", &ScanOp{Table: db.Table("users"), OutStream: 1})
	edge := Connect(scan, rig.sink)
	rig.start()
	defer rig.stop()

	res := rig.runGen(1, db.SnapshotTS(),
		map[*Node][]Task{scan: {
			{Query: 1, Spec: ScanSpec{Pred: eqExpr(1, types.NewString("CH"))}},
			{Query: 2, Spec: ScanSpec{Pred: eqExpr(1, types.NewString("DE"))}},
			{Query: 3, Spec: ScanSpec{}}, // all rows
		}},
		map[*Edge][]queryset.QueryID{edge: {1, 2, 3}},
	)
	if len(res[1]) != 5 || len(res[2]) != 5 || len(res[3]) != 10 {
		t.Errorf("row counts = %d/%d/%d, want 5/5/10", len(res[1]), len(res[2]), len(res[3]))
	}
}

func TestOutputRoutingRestrictsQuerySets(t *testing.T) {
	// Two consumers, each owning one query: tuples must arrive at each with
	// only that consumer's queries.
	db := newTestDB(t)
	rig := newRig(t)
	scan := rig.node("scan(users)", &ScanOp{Table: db.Table("users"), OutStream: 1})
	filt := rig.node("filter", &FilterOp{})
	e1 := Connect(scan, rig.sink) // Q1 direct
	e2 := Connect(scan, filt)     // Q2 via filter
	e3 := Connect(filt, rig.sink)
	rig.start()
	defer rig.stop()

	res := rig.runGen(1, db.SnapshotTS(),
		map[*Node][]Task{
			scan: {
				{Query: 1, Spec: ScanSpec{}},
				{Query: 2, Spec: ScanSpec{}},
			},
			filt: {
				{Query: 2, Spec: FilterSpec{Pred: eqExpr(0, types.NewInt(4))}},
			},
		},
		map[*Edge][]queryset.QueryID{e1: {1}, e2: {2}, e3: {2}},
	)
	if len(res[1]) != 10 {
		t.Errorf("Q1 = %d rows, want 10", len(res[1]))
	}
	if len(res[2]) != 1 || res[2][0][0].AsInt() != 4 {
		t.Errorf("Q2 = %v, want single row id 4", res[2])
	}
}

func TestSharedHashJoin(t *testing.T) {
	db := newTestDB(t)
	rig := newRig(t)
	uscan := rig.node("scan(users)", &ScanOp{Table: db.Table("users"), OutStream: 1})
	oscan := rig.node("scan(orders)", &ScanOp{Table: db.Table("orders"), OutStream: 2})
	join := &HashJoinOp{
		InnerKeyCols: []int{0}, // users.user_id
		InnerStream:  1,
		Outers:       map[int]JoinOuter{2: {KeyCols: []int{1}, OutStream: 3}}, // orders.o_user_id
	}
	jnode := rig.node("join", join)
	ie := Connect(uscan, jnode)
	join.SetInnerEdge(ie)
	oe := Connect(oscan, jnode)
	se := Connect(jnode, rig.sink)
	rig.start()
	defer rig.stop()

	// Q1: CH users' OK orders; Q2: all users' PENDING orders.
	res := rig.runGen(1, db.SnapshotTS(),
		map[*Node][]Task{
			uscan: {
				{Query: 1, Spec: ScanSpec{Pred: eqExpr(1, types.NewString("CH"))}},
				{Query: 2, Spec: ScanSpec{}},
			},
			oscan: {
				{Query: 1, Spec: ScanSpec{Pred: eqExpr(2, types.NewString("OK"))}},
				{Query: 2, Spec: ScanSpec{Pred: eqExpr(2, types.NewString("PENDING"))}},
			},
			jnode: {
				{Query: 1, Spec: JoinSpec{}},
				{Query: 2, Spec: JoinSpec{}},
			},
		},
		map[*Edge][]queryset.QueryID{ie: {1, 2}, oe: {1, 2}, se: {1, 2}},
	)
	// validate against a hand computation: users 0,2,4,6,8 are CH; orders
	// i: user i%10, status OK unless i%3==0.
	wantQ1 := 0
	for i := 0; i < 30; i++ {
		if i%3 != 0 && (i%10)%2 == 0 {
			wantQ1++
		}
	}
	wantQ2 := 0
	for i := 0; i < 30; i++ {
		if i%3 == 0 {
			wantQ2++
		}
	}
	if len(res[1]) != wantQ1 {
		t.Errorf("Q1 = %d rows, want %d", len(res[1]), wantQ1)
	}
	if len(res[2]) != wantQ2 {
		t.Errorf("Q2 = %d rows, want %d", len(res[2]), wantQ2)
	}
	// join output schema: orders row ++ users row (outer ++ inner)
	for _, row := range res[1] {
		if len(row) != 5 {
			t.Fatalf("joined width = %d", len(row))
		}
		if row[1].AsInt() != row[3].AsInt() {
			t.Errorf("join key mismatch: %v", row)
		}
		if row[2].AsString() != "OK" || row[4].AsString() != "CH" {
			t.Errorf("Q1 predicate violated: %v", row)
		}
	}
}

func TestHashJoinByQueryIDMatchesByKey(t *testing.T) {
	db := newTestDB(t)
	for _, mode := range []bool{false, true} {
		rig := newRig(t)
		uscan := rig.node("scan(users)", &ScanOp{Table: db.Table("users"), OutStream: 1})
		oscan := rig.node("scan(orders)", &ScanOp{Table: db.Table("orders"), OutStream: 2})
		join := &HashJoinOp{
			InnerKeyCols: []int{0},
			InnerStream:  1,
			Outers:       map[int]JoinOuter{2: {KeyCols: []int{1}, OutStream: 3}},
			ByQueryID:    mode,
		}
		jnode := rig.node("join", join)
		ie := Connect(uscan, jnode)
		join.SetInnerEdge(ie)
		oe := Connect(oscan, jnode)
		se := Connect(jnode, rig.sink)
		rig.start()

		res := rig.runGen(1, db.SnapshotTS(),
			map[*Node][]Task{
				uscan: {{Query: 1, Spec: ScanSpec{Pred: eqExpr(0, types.NewInt(3))}}},
				oscan: {{Query: 1, Spec: ScanSpec{}}},
				jnode: {{Query: 1, Spec: JoinSpec{}}},
			},
			map[*Edge][]queryset.QueryID{ie: {1}, oe: {1}, se: {1}},
		)
		if len(res[1]) != 3 { // orders 3, 13, 23
			t.Errorf("mode=%v: %d rows, want 3", mode, len(res[1]))
		}
		rig.stop()
	}
}

func TestIndexJoin(t *testing.T) {
	db := newTestDB(t)
	rig := newRig(t)
	oscan := rig.node("scan(orders)", &ScanOp{Table: db.Table("orders"), OutStream: 1})
	join := &IndexJoinOp{
		Table:  db.Table("users"),
		Index:  db.Table("users").PrimaryKey(),
		Outers: map[int]JoinOuter{1: {KeyCols: []int{1}, OutStream: 2}},
	}
	jnode := rig.node("ixjoin", join)
	oe := Connect(oscan, jnode)
	se := Connect(jnode, rig.sink)
	rig.start()
	defer rig.stop()

	// Q1 wants only CH users (inner residual); Q2 wants all.
	res := rig.runGen(1, db.SnapshotTS(),
		map[*Node][]Task{
			oscan: {
				{Query: 1, Spec: ScanSpec{Pred: eqExpr(2, types.NewString("OK"))}},
				{Query: 2, Spec: ScanSpec{}},
			},
			jnode: {
				{Query: 1, Spec: IndexJoinSpec{InnerResidual: eqExpr(1, types.NewString("CH"))}},
				{Query: 2, Spec: IndexJoinSpec{}},
			},
		},
		map[*Edge][]queryset.QueryID{oe: {1, 2}, se: {1, 2}},
	)
	if len(res[2]) != 30 {
		t.Errorf("Q2 = %d rows, want 30", len(res[2]))
	}
	for _, row := range res[1] {
		if row[2].AsString() != "OK" || row[4].AsString() != "CH" {
			t.Errorf("Q1 got %v", row)
		}
	}
	wantQ1 := 0
	for i := 0; i < 30; i++ {
		if i%3 != 0 && (i%10)%2 == 0 {
			wantQ1++
		}
	}
	if len(res[1]) != wantQ1 {
		t.Errorf("Q1 = %d, want %d", len(res[1]), wantQ1)
	}
}

func TestSharedSortAndTopN(t *testing.T) {
	db := newTestDB(t)
	rig := newRig(t)
	scan := rig.node("scan(orders)", &ScanOp{Table: db.Table("orders"), OutStream: 1})
	sortOp := &SortOp{Streams: map[int]SortStream{
		1: {Keys: []SortKey{{E: &expr.ColRef{Idx: 0}, Desc: true}}, OutStream: 1},
	}}
	snode := rig.node("sort", sortOp)
	e1 := Connect(scan, snode)
	e2 := Connect(snode, rig.sink)
	rig.start()
	defer rig.stop()

	res := rig.runGen(1, db.SnapshotTS(),
		map[*Node][]Task{
			scan: {
				{Query: 1, Spec: ScanSpec{}},
				{Query: 2, Spec: ScanSpec{Pred: eqExpr(2, types.NewString("OK"))}},
			},
			snode: {
				{Query: 1, Spec: SortSpec{}},         // full sort
				{Query: 2, Spec: SortSpec{Limit: 5}}, // Top-5
			},
		},
		map[*Edge][]queryset.QueryID{e1: {1, 2}, e2: {1, 2}},
	)
	if len(res[1]) != 30 {
		t.Fatalf("Q1 = %d rows", len(res[1]))
	}
	if !sort.SliceIsSorted(res[1], func(i, j int) bool {
		return res[1][i][0].AsInt() > res[1][j][0].AsInt()
	}) {
		t.Error("Q1 not descending")
	}
	if len(res[2]) != 5 {
		t.Fatalf("Q2 = %d rows, want 5", len(res[2]))
	}
	// top-5 OK orders by id desc: 29, 28, 26, 25, 23
	want := []int64{29, 28, 26, 25, 23}
	for i, w := range want {
		if res[2][i][0].AsInt() != w {
			t.Errorf("Q2[%d] = %d, want %d", i, res[2][i][0].AsInt(), w)
		}
	}
}

func TestSharedSortHeterogeneousStreams(t *testing.T) {
	// The Figure 2 situation: one sort consuming two streams with different
	// schemas, keyed on semantically equal columns.
	db := newTestDB(t)
	rig := newRig(t)
	uscan := rig.node("scan(users)", &ScanOp{Table: db.Table("users"), OutStream: 1})
	oscan := rig.node("scan(orders)", &ScanOp{Table: db.Table("orders"), OutStream: 2})
	sortOp := &SortOp{Streams: map[int]SortStream{
		1: {Keys: []SortKey{{E: &expr.ColRef{Idx: 0}}}, OutStream: 1}, // users.user_id
		2: {Keys: []SortKey{{E: &expr.ColRef{Idx: 1}}}, OutStream: 2}, // orders.o_user_id
	}}
	snode := rig.node("sort", sortOp)
	e1 := Connect(uscan, snode)
	e2 := Connect(oscan, snode)
	e3 := Connect(snode, rig.sink)
	rig.start()
	defer rig.stop()

	res := rig.runGen(1, db.SnapshotTS(),
		map[*Node][]Task{
			uscan: {{Query: 1, Spec: ScanSpec{}}},
			oscan: {{Query: 2, Spec: ScanSpec{}}},
			snode: {{Query: 1, Spec: SortSpec{}}, {Query: 2, Spec: SortSpec{}}},
		},
		map[*Edge][]queryset.QueryID{e1: {1}, e2: {2}, e3: {1, 2}},
	)
	if len(res[1]) != 10 || len(res[2]) != 30 {
		t.Fatalf("rows = %d/%d", len(res[1]), len(res[2]))
	}
	for i := 1; i < len(res[2]); i++ {
		if res[2][i][1].AsInt() < res[2][i-1][1].AsInt() {
			t.Fatal("Q2 stream not sorted by its own key column")
		}
	}
}

func TestSharedGroupBy(t *testing.T) {
	db := newTestDB(t)
	rig := newRig(t)
	scan := rig.node("scan(orders)", &ScanOp{Table: db.Table("orders"), OutStream: 1})
	gop := &GroupOp{
		Streams: map[int]GroupStream{
			1: {GroupCols: []int{1}, AggArgs: []expr.Expr{nil}}, // group by o_user_id, COUNT(*)
		},
		Aggs:      []AggDef{{Kind: AggCount}},
		OutStream: 5,
	}
	gnode := rig.node("group", gop)
	e1 := Connect(scan, gnode)
	e2 := Connect(gnode, rig.sink)
	rig.start()
	defer rig.stop()

	having := &expr.Cmp{Op: expr.GE, L: &expr.ColRef{Idx: 1}, R: &expr.Const{Val: types.NewInt(2)}}
	res := rig.runGen(1, db.SnapshotTS(),
		map[*Node][]Task{
			scan: {
				{Query: 1, Spec: ScanSpec{}},
				{Query: 2, Spec: ScanSpec{Pred: eqExpr(2, types.NewString("PENDING"))}},
			},
			gnode: {
				{Query: 1, Spec: GroupSpec{}},
				{Query: 2, Spec: GroupSpec{Having: having}},
			},
		},
		map[*Edge][]queryset.QueryID{e1: {1, 2}, e2: {1, 2}},
	)
	// Q1: every user has 3 orders → 10 groups with count 3.
	if len(res[1]) != 10 {
		t.Fatalf("Q1 groups = %d", len(res[1]))
	}
	for _, row := range res[1] {
		if row[1].AsInt() != 3 {
			t.Errorf("Q1 count = %v", row)
		}
	}
	// Q2: PENDING orders are 0,3,6,...,27 → users 0,3,6,9 get 1, user
	// i%10... compute: counts per user of multiples of 3 below 30: user j
	// has orders j, j+10, j+20; PENDING iff divisible by 3. Exactly one of
	// j, j+10, j+20 is divisible by 3 → every user has exactly 1 → HAVING
	// >= 2 eliminates all groups.
	if len(res[2]) != 0 {
		t.Errorf("Q2 groups = %d, want 0 (HAVING filtered)", len(res[2]))
	}
}

func TestGroupAggregates(t *testing.T) {
	db := newTestDB(t)
	rig := newRig(t)
	scan := rig.node("scan(orders)", &ScanOp{Table: db.Table("orders"), OutStream: 1})
	gop := &GroupOp{
		Streams: map[int]GroupStream{
			1: {GroupCols: nil, AggArgs: []expr.Expr{
				&expr.ColRef{Idx: 0}, // SUM(o_id)
				&expr.ColRef{Idx: 0}, // MIN(o_id)
				&expr.ColRef{Idx: 0}, // MAX(o_id)
				&expr.ColRef{Idx: 0}, // AVG(o_id)
				&expr.ColRef{Idx: 1}, // COUNT(DISTINCT o_user_id)
			}},
		},
		Aggs: []AggDef{
			{Kind: AggSum}, {Kind: AggMin}, {Kind: AggMax}, {Kind: AggAvg},
			{Kind: AggCount, Distinct: true},
		},
		OutStream: 9,
	}
	gnode := rig.node("group", gop)
	e1 := Connect(scan, gnode)
	e2 := Connect(gnode, rig.sink)
	rig.start()
	defer rig.stop()

	res := rig.runGen(1, db.SnapshotTS(),
		map[*Node][]Task{
			scan:  {{Query: 1, Spec: ScanSpec{}}},
			gnode: {{Query: 1, Spec: GroupSpec{}}},
		},
		map[*Edge][]queryset.QueryID{e1: {1}, e2: {1}},
	)
	if len(res[1]) != 1 {
		t.Fatalf("scalar aggregate rows = %d", len(res[1]))
	}
	row := res[1][0]
	if row[0].AsInt() != 435 { // sum 0..29
		t.Errorf("SUM = %v", row[0])
	}
	if row[1].AsInt() != 0 || row[2].AsInt() != 29 {
		t.Errorf("MIN/MAX = %v/%v", row[1], row[2])
	}
	if row[3].AsFloat() != 14.5 {
		t.Errorf("AVG = %v", row[3])
	}
	if row[4].AsInt() != 10 {
		t.Errorf("COUNT(DISTINCT user) = %v", row[4])
	}
}

func TestMultiGenerationReuse(t *testing.T) {
	// The always-on plan serves many generations (paper §3.2: the global
	// plan "may be reused over a long period of time").
	db := newTestDB(t)
	rig := newRig(t)
	scan := rig.node("scan(users)", &ScanOp{Table: db.Table("users"), OutStream: 1})
	edge := Connect(scan, rig.sink)
	rig.start()
	defer rig.stop()

	for gen := uint64(1); gen <= 5; gen++ {
		country := "CH"
		if gen%2 == 0 {
			country = "DE"
		}
		res := rig.runGen(gen, db.SnapshotTS(),
			map[*Node][]Task{scan: {
				{Query: queryset.QueryID(gen * 10), Spec: ScanSpec{Pred: eqExpr(1, types.NewString(country))}},
			}},
			map[*Edge][]queryset.QueryID{edge: {queryset.QueryID(gen * 10)}},
		)
		if len(res[queryset.QueryID(gen*10)]) != 5 {
			t.Fatalf("gen %d: %d rows", gen, len(res[queryset.QueryID(gen*10)]))
		}
	}
}

func TestSyncedQueue(t *testing.T) {
	q := NewSyncedQueue()
	q.Push(Message{Gen: 1})
	q.Push(Message{Gen: 2})
	if q.Len() != 2 {
		t.Errorf("Len = %d", q.Len())
	}
	m, ok := q.Pop()
	if !ok || m.Gen != 1 {
		t.Error("FIFO violated")
	}
	done := make(chan Message)
	go func() {
		m, _ := q.Pop()
		m2, _ := q.Pop()
		done <- m
		done <- m2
	}()
	q.Push(Message{Gen: 3})
	if got := <-done; got.Gen != 2 {
		t.Errorf("got gen %d", got.Gen)
	}
	if got := <-done; got.Gen != 3 {
		t.Errorf("blocking pop got gen %d", got.Gen)
	}
	q.Close()
	if _, ok := q.Pop(); ok {
		t.Error("Pop after close+drain should report !ok")
	}
	q.Push(Message{Gen: 4}) // no-op
	if q.Len() != 0 {
		t.Error("push after close should be dropped")
	}
}

func TestLargeBatchFlush(t *testing.T) {
	// more rows than batchSize forces mid-cycle flushes
	db, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	big, _ := db.CreateTable("big", types.NewSchema(types.Col("n", types.KindInt)))
	var ops []storage.WriteOp
	for i := 0; i < 3*batchSize+7; i++ {
		ops = append(ops, storage.WriteOp{Table: "big", Kind: storage.WInsert,
			Row: types.Row{types.NewInt(int64(i))}})
	}
	db.ApplyOps(ops)

	rig := newRig(t)
	scan := rig.node("scan(big)", &ScanOp{Table: big, OutStream: 1})
	edge := Connect(scan, rig.sink)
	rig.start()
	defer rig.stop()
	res := rig.runGen(1, db.SnapshotTS(),
		map[*Node][]Task{scan: {{Query: 1, Spec: ScanSpec{}}}},
		map[*Edge][]queryset.QueryID{edge: {1}},
	)
	if len(res[1]) != 3*batchSize+7 {
		t.Errorf("rows = %d, want %d", len(res[1]), 3*batchSize+7)
	}
}

func TestFigure2Topology(t *testing.T) {
	// The paper's Figure 2: join2's outer input receives join1 output (for
	// Q3-style queries) AND bare orders tuples (for Q4-style queries).
	db := newTestDB(t)
	rig := newRig(t)
	uscan := rig.node("scan(users)", &ScanOp{Table: db.Table("users"), OutStream: 1})
	oscan := rig.node("scan(orders)", &ScanOp{Table: db.Table("orders"), OutStream: 2})

	// join1: orders ⋈ users (inner = users)
	join1 := &HashJoinOp{
		InnerKeyCols: []int{0}, InnerStream: 1,
		Outers: map[int]JoinOuter{2: {KeyCols: []int{1}, OutStream: 3}},
	}
	j1 := rig.node("join1", join1)
	ie1 := Connect(uscan, j1)
	join1.SetInnerEdge(ie1)
	oe1 := Connect(oscan, j1)

	// join2: X ⋈ users-by-pk via index join, where X is either join1 output
	// (stream 3: orders++users, key = users.user_id at col 3) or bare
	// orders (stream 2: key = o_user_id at col 1). A second users join is
	// artificial but exercises exactly the heterogeneous-outer mechanics.
	join2 := &IndexJoinOp{
		Table: db.Table("users"), Index: db.Table("users").PrimaryKey(),
		Outers: map[int]JoinOuter{
			3: {KeyCols: []int{3}, OutStream: 4},
			2: {KeyCols: []int{1}, OutStream: 5},
		},
	}
	j2 := rig.node("join2", join2)
	e13 := Connect(j1, j2)
	e23 := Connect(oscan, j2)
	es := Connect(j2, rig.sink)
	rig.start()
	defer rig.stop()

	res := rig.runGen(1, db.SnapshotTS(),
		map[*Node][]Task{
			uscan: {{Query: 3, Spec: ScanSpec{}}},
			oscan: {
				{Query: 3, Spec: ScanSpec{Pred: eqExpr(2, types.NewString("OK"))}},
				{Query: 4, Spec: ScanSpec{Pred: eqExpr(2, types.NewString("PENDING"))}},
			},
			j1: {{Query: 3, Spec: JoinSpec{}}},
			j2: {
				{Query: 3, Spec: IndexJoinSpec{}},
				{Query: 4, Spec: IndexJoinSpec{}},
			},
		},
		map[*Edge][]queryset.QueryID{
			ie1: {3}, oe1: {3}, e13: {3}, e23: {4}, es: {3, 4},
		},
	)
	if len(res[3]) != 20 { // OK orders
		t.Errorf("Q3 = %d rows, want 20", len(res[3]))
	}
	for _, row := range res[3] {
		if len(row) != 7 { // orders(3) + users(2) + users(2)
			t.Fatalf("Q3 width = %d", len(row))
		}
	}
	if len(res[4]) != 10 { // PENDING orders
		t.Errorf("Q4 = %d rows, want 10", len(res[4]))
	}
	for _, row := range res[4] {
		if len(row) != 5 { // orders(3) + users(2)
			t.Fatalf("Q4 width = %d", len(row))
		}
	}
}

func TestFilterPerQueryPredicates(t *testing.T) {
	db := newTestDB(t)
	rig := newRig(t)
	scan := rig.node("scan(users)", &ScanOp{Table: db.Table("users"), OutStream: 1})
	fnode := rig.node("filter", &FilterOp{})
	e1 := Connect(scan, fnode)
	e2 := Connect(fnode, rig.sink)
	rig.start()
	defer rig.stop()

	res := rig.runGen(1, db.SnapshotTS(),
		map[*Node][]Task{
			scan: {{Query: 1, Spec: ScanSpec{}}, {Query: 2, Spec: ScanSpec{}}},
			fnode: {
				{Query: 1, Spec: FilterSpec{Pred: eqExpr(1, types.NewString("CH"))}},
				{Query: 2, Spec: FilterSpec{Pred: eqExpr(1, types.NewString("DE"))}},
			},
		},
		map[*Edge][]queryset.QueryID{e1: {1, 2}, e2: {1, 2}},
	)
	if len(res[1]) != 5 || len(res[2]) != 5 {
		t.Errorf("rows = %d/%d", len(res[1]), len(res[2]))
	}
	for _, r := range res[1] {
		if r[1].AsString() != "CH" {
			t.Errorf("Q1 leak: %v", r)
		}
	}
}
