package operators

import (
	"testing"

	"shareddb/internal/queryset"
	"shareddb/internal/testutil"
	"shareddb/internal/types"
)

// Allocation-regression gates for the zero-allocation hot path: the
// emitter's per-tuple routing and the batch pool's recycle loop must not
// allocate in steady state. CI runs these without -race (instrumentation
// changes allocation counts); the -race run skips them.

// emitHarness wires a producer node to a consumer and returns the warmed
// emitter plus a drain function that recycles flushed batches.
func emitHarness(t *testing.T, gen uint64, edgeSet queryset.Set) (*emitter, *BatchPool, func()) {
	t.Helper()
	pool := NewBatchPool()
	src := NewNode(0, "src", &FilterOp{})
	src.SetPool(pool)
	dst := NewNode(1, "dst", &FilterOp{})
	dst.SetPool(pool)
	e := Connect(src, dst)
	e.SetQueries(gen, edgeSet)
	em := newEmitter(src, gen)
	drain := func() {
		for dst.Inbox().Len() > 0 {
			m, ok := dst.Inbox().Pop()
			if !ok {
				return
			}
			if m.Batch != nil {
				pool.Put(m.Batch)
			}
		}
	}
	return em, pool, drain
}

// TestEmitRoutingZeroAlloc pins ~0 allocations per routed tuple on the
// steady-state emitter path: intersection into the batch arena, pooled
// batch reuse, queue hand-off.
func TestEmitRoutingZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	em, _, drain := emitHarness(t, 1, queryset.Of(1, 2, 3, 4))
	row := types.Row{types.NewInt(42), types.NewString("x")}
	qs := queryset.Of(1, 3, 4)

	// Warm up: grow the pool, the batch arenas and the inbox backing array
	// to steady-state capacity.
	for i := 0; i < 8*batchSize; i++ {
		em.emit(0, row, qs)
		drain()
	}

	const tuplesPerRun = 512
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < tuplesPerRun; i++ {
			em.emit(0, row, qs)
		}
		drain()
	})
	perTuple := allocs / tuplesPerRun
	if perTuple > 0.01 {
		t.Errorf("emitter.emit allocates %.4f/tuple (%.1f/run), want ~0", perTuple, allocs)
	}
}

// TestBatchPoolRecycles checks the free-list loop: a released batch comes
// back on the next Get with its buffers intact and its state reset.
func TestBatchPoolRecycles(t *testing.T) {
	pool := NewBatchPool()
	b := pool.Get(7)
	b.Tuples = append(b.Tuples, Tuple{Row: types.Row{types.NewInt(1)}, QS: b.arena.Append(queryset.Of(1))})
	b.retained = true
	pool.Put(b)
	b2 := pool.Get(3)
	if b2 != b {
		t.Fatal("pool did not recycle the released batch")
	}
	if b2.Stream != 3 || len(b2.Tuples) != 0 || b2.retained {
		t.Errorf("recycled batch not reset: stream=%d len=%d retained=%v", b2.Stream, len(b2.Tuples), b2.retained)
	}
	gets, reuses := pool.Stats()
	if gets != 2 || reuses != 1 {
		t.Errorf("stats = (%d, %d), want (2, 1)", gets, reuses)
	}
	// Foreign batches (not pool-born) are never pooled.
	pool.Put(&Batch{Stream: 1, Tuples: make([]Tuple, 1)})
	if g, _ := pool.Stats(); g != 2 {
		t.Errorf("foreign Put changed stats")
	}
	b3 := pool.Get(1)
	if len(b3.Tuples) != 0 {
		t.Error("foreign batch leaked into the pool")
	}
}

// TestBatchPoolZeroAllocSteadyState pins the Get/Put loop itself at zero
// allocations once warmed.
func TestBatchPoolZeroAllocSteadyState(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	pool := NewBatchPool()
	pool.Put(pool.Get(0))
	allocs := testing.AllocsPerRun(1000, func() {
		b := pool.Get(0)
		pool.Put(b)
	})
	if allocs != 0 {
		t.Errorf("pool Get/Put allocates %.2f/op, want 0", allocs)
	}
}

// TestAdaptWorkers pins the adaptive worker budget heuristic: tiny previous
// cycles force serial execution, unknown history trusts the budget.
func TestAdaptWorkers(t *testing.T) {
	cases := []struct {
		budget, prev, want int
	}{
		{4, -1, 4},   // first cycle: no history, trust the budget
		{4, 10, 1},   // 10-row cycle: stay serial
		{4, 0, 1},    // empty cycle: stay serial
		{4, 5000, 4}, // big cycle: full budget
		{1, 5000, 1}, // serial budget stays serial
		{1, 10, 1},
	}
	for _, c := range cases {
		if got := adaptWorkers(c.budget, c.prev); got != c.want {
			t.Errorf("adaptWorkers(%d, %d) = %d, want %d", c.budget, c.prev, got, c.want)
		}
	}
}

// TestJoinTableMatchesMapSemantics drives the open-addressed build table
// against a reference map build over coercion-prone keys.
func TestJoinTableMatchesMapSemantics(t *testing.T) {
	keyCols := []int{0}
	var jt joinTable
	jt.reset(keyCols)
	ref := map[string][]int{} // encoded key → tuple ordinals
	rows := []types.Row{
		{types.NewInt(1), types.NewString("a")},
		{types.NewInt(2), types.NewString("b")},
		{types.NewInt(1), types.NewString("c")},
		{types.NewFloat(2), types.NewString("d")}, // coerces equal to INT 2
		{types.NewInt(1), types.NewString("e")},
		{types.Null, types.NewString("n1")},
		{types.Null, types.NewString("n2")},
	}
	for i, r := range rows {
		jt.insert(hashValues(r, keyCols), Tuple{Row: r})
		// reference: group by coerced equality, arrival order
		var bucket string
		switch {
		case r[0].IsNull():
			bucket = "null"
		default:
			bucket = r[0].String() // "2" for both INT 2 and FLOAT 2
		}
		ref[bucket] = append(ref[bucket], i)
	}
	for bucket, wantOrds := range ref {
		probe := rows[wantOrds[0]]
		h := hashValues(probe, keyCols)
		var got []string
		for ei := jt.lookup(h, probe, keyCols); ei >= 0; ei = jt.entries[ei].next {
			got = append(got, jt.entries[ei].t.Row[1].Str)
		}
		if len(got) != len(wantOrds) {
			t.Fatalf("bucket %s: got %d matches %v, want %d", bucket, len(got), got, len(wantOrds))
		}
		for i, ord := range wantOrds {
			if got[i] != rows[ord][1].Str {
				t.Errorf("bucket %s match %d = %s, want %s (arrival order broken)", bucket, i, got[i], rows[ord][1].Str)
			}
		}
	}
	if jt.lookup(hashValues(types.Row{types.NewInt(99)}, keyCols), types.Row{types.NewInt(99)}, keyCols) != -1 {
		t.Error("lookup of absent key found a match")
	}
	// Reset drops everything but keeps capacity.
	jt.reset(keyCols)
	if jt.len() != 0 {
		t.Error("reset left entries behind")
	}
}

// TestGroupTableInsertLookup checks the group-by table's open addressing
// incl. hash collisions resolved by value comparison and insertion-order
// iteration.
func TestGroupTableInsertLookup(t *testing.T) {
	var gt groupTable
	gt.reset()
	mk := func(vals ...types.Value) *groupEntry {
		h := uint64(0)
		for _, v := range vals {
			h = (h ^ v.Hash()) * 1099511628211
		}
		return &groupEntry{hash: h, keyVals: vals}
	}
	// Force collisions by giving every entry the same hash.
	entries := []*groupEntry{
		{hash: 42, keyVals: []types.Value{types.NewInt(1)}},
		{hash: 42, keyVals: []types.Value{types.NewInt(2)}},
		{hash: 42, keyVals: []types.Value{types.NewString("x")}},
	}
	for _, ge := range entries {
		if gt.lookup(ge.hash, ge.keyVals) != nil {
			t.Fatal("phantom entry before insert")
		}
		gt.insert(ge)
	}
	for i, ge := range entries {
		got := gt.lookup(ge.hash, ge.keyVals)
		if got != ge {
			t.Errorf("lookup entry %d = %v, want %v", i, got, ge)
		}
	}
	// Insertion order is preserved across growth.
	for i := 0; i < 100; i++ {
		ge := mk(types.NewInt(int64(100 + i)))
		gt.insert(ge)
	}
	if len(gt.entries) != 103 {
		t.Fatalf("entries = %d, want 103", len(gt.entries))
	}
	for i, ge := range entries {
		if gt.entries[i] != ge {
			t.Errorf("insertion order broken at %d", i)
		}
	}
}

// TestSyncedQueueReusesBacking pins that the steady produce/consume cycle
// does not reallocate the queue's backing array.
func TestSyncedQueueReusesBacking(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	q := NewSyncedQueue()
	// Warm the backing array.
	for i := 0; i < 64; i++ {
		q.Push(Message{Gen: uint64(i)})
	}
	for q.Len() > 0 {
		q.Pop()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 16; i++ {
			q.Push(Message{Gen: uint64(i)})
		}
		for q.Len() > 0 {
			q.Pop()
		}
	})
	if allocs != 0 {
		t.Errorf("queue push/pop allocates %.2f/run, want 0", allocs)
	}
}
