package operators

import (
	"fmt"
	"testing"

	"shareddb/internal/queryset"
	"shareddb/internal/types"
)

// Ablation A3 (DESIGN.md): the shared hash join's two build strategies
// (§3.3) — hashing the build side on the join key vs hashing on query_id
// (the set-based join of Helmer & Moerkotte). The query-id variant is
// "only beneficial if these sets are small": with few subscribers per inner
// tuple it avoids key hashing, with many it explodes.
func BenchmarkAblation_JoinByKeyVsByQueryID(b *testing.B) {
	const innerRows = 1000
	const outerRows = 1000
	for _, queriesPerTuple := range []int{1, 8, 64} {
		for _, byQID := range []bool{false, true} {
			mode := "byKey"
			if byQID {
				mode = "byQueryID"
			}
			b.Run(fmt.Sprintf("%dq/%s", queriesPerTuple, mode), func(b *testing.B) {
				inner := &Batch{Stream: 1}
				for i := 0; i < innerRows; i++ {
					ids := make([]queryset.QueryID, queriesPerTuple)
					for q := range ids {
						ids[q] = queryset.QueryID(q + 1)
					}
					inner.Tuples = append(inner.Tuples, Tuple{
						Row: types.Row{types.NewInt(int64(i)), types.NewString("inner")},
						QS:  queryset.Of(ids...),
					})
				}
				outer := &Batch{Stream: 2}
				for i := 0; i < outerRows; i++ {
					ids := make([]queryset.QueryID, queriesPerTuple)
					for q := range ids {
						ids[q] = queryset.QueryID(q + 1)
					}
					outer.Tuples = append(outer.Tuples, Tuple{
						Row: types.Row{types.NewInt(int64(i % innerRows)), types.NewString("outer")},
						QS:  queryset.Of(ids...),
					})
				}
				op := &HashJoinOp{
					InnerKeyCols: []int{0},
					InnerStream:  1,
					Outers:       map[int]JoinOuter{2: {KeyCols: []int{0}, OutStream: 3}},
					ByQueryID:    byQID,
				}
				node := NewNode(0, "bench-join", op) // no consumers: emit is a no-op
				edge := &Edge{From: node, To: node}
				op.SetInnerEdge(edge)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c := &Cycle{Gen: uint64(i), em: newEmitter(node, uint64(i))}
					op.Start(c)
					op.Consume(c, inner)
					op.EdgeEOS(c, edge)
					op.Consume(c, outer)
					op.Finish(c)
				}
			})
		}
	}
}
