package operators

import (
	"fmt"
	"sync"

	"shareddb/internal/queryset"
	"shareddb/internal/types"
)

// Node is one always-on operator in the global query plan. Each node owns a
// goroutine (the paper pins each operator to a CPU core with hard affinity;
// a long-lived goroutine is this implementation's substitute) and an
// unbounded incoming message queue. Nodes are connected by Edges.
type Node struct {
	ID        int
	Name      string
	Op        Operator
	Consumers []*Edge // outgoing edges, set during plan construction
	Producers []*Edge // incoming edges

	inbox *SyncedQueue
	wg    sync.WaitGroup
}

// Edge connects a producer node to a consumer node. queries is
// per-generation state: the set of active queries routed over this edge,
// written by the coordinator between generations (the generation barrier
// makes this safe) and read by the producer's emitter during the cycle.
type Edge struct {
	From, To *Node
	queries  queryset.Set
}

// SetQueries assigns the active query set for the upcoming generation.
// Must only be called between generations.
func (e *Edge) SetQueries(qs queryset.Set) { e.queries = qs }

// Queries returns the edge's active query set.
func (e *Edge) Queries() queryset.Set { return e.queries }

// NewNode creates a node with the given operator behavior.
func NewNode(id int, name string, op Operator) *Node {
	return &Node{ID: id, Name: name, Op: op, inbox: NewSyncedQueue()}
}

// Message is the unit of communication between nodes.
type Message struct {
	Gen   uint64
	Edge  *Edge
	Batch *Batch
	EOS   bool
	Ctrl  *CycleStart
}

// Connect wires an edge from producer to consumer and registers it on both.
func Connect(from, to *Node) *Edge {
	e := &Edge{From: from, To: to}
	from.Consumers = append(from.Consumers, e)
	to.Producers = append(to.Producers, e)
	return e
}

// CycleStart activates a node for one generation.
type CycleStart struct {
	Gen             uint64
	TS              uint64 // storage snapshot for this generation
	Tasks           []Task // per-query activations at this node
	ActiveProducers int    // producer edges that will send EOS this cycle
	OnDone          func() // optional completion callback (used by sinks)
}

// Task is one active query's registration at a node for one generation.
// Spec carries the operator-specific bound configuration (e.g. a scan
// predicate with parameters substituted).
type Task struct {
	Query queryset.QueryID
	Spec  interface{}
}

// Cycle is the per-generation execution context handed to the operator.
type Cycle struct {
	Gen   uint64
	TS    uint64
	Tasks []Task

	node *Node
	em   *emitter
	all  queryset.Set // cached union of task query ids

	// opState carries operator-private per-cycle state (a node executes at
	// most one cycle at a time, so a single slot suffices).
	opState interface{}
}

// Emit routes a result tuple to all interested consumers.
func (c *Cycle) Emit(stream int, row types.Row, qs queryset.Set) {
	c.em.emit(stream, row, qs)
}

// Queries returns the set of query ids active at this node this cycle.
func (c *Cycle) Queries() queryset.Set { return c.all }

// Operator is the behavior of a shared operator, mirroring Algorithm 1:
// Start activates the cycle's queries, Consume is ProcessTuple over one
// incoming vector, Finish runs after end-of-stream from every active
// producer (where blocking operators such as sort emit their output).
type Operator interface {
	Start(c *Cycle)
	Consume(c *Cycle, b *Batch)
	Finish(c *Cycle)
}

// EOSAware operators (e.g. hash joins) are told when an individual producer
// edge reaches end-of-stream, so they can switch phases before the whole
// cycle ends (build → probe).
type EOSAware interface {
	EdgeEOS(c *Cycle, e *Edge)
}

// Start launches the node's goroutine.
func (n *Node) Start() {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.run()
	}()
}

// Stop closes the inbox and waits for the goroutine to exit. Pending work is
// abandoned; Stop is for shutdown, not generation control.
func (n *Node) Stop() {
	n.inbox.Close()
	n.wg.Wait()
}

// Inbox exposes the node's queue (the coordinator pushes CycleStart
// messages; producers push data).
func (n *Node) Inbox() *SyncedQueue { return n.inbox }

// run is the outer loop: wait for a generation activation, execute the
// cycle, repeat. Data can overtake a node's CycleStart (the coordinator
// pushes activations node by node while fast producers are already
// emitting), so out-of-cycle data is stashed and replayed when the matching
// activation arrives.
func (n *Node) run() {
	var stash []Message
	for {
		msg, ok := n.inbox.Pop()
		if !ok {
			return
		}
		if msg.Ctrl == nil {
			stash = append(stash, msg)
			continue
		}
		stash = n.runCycle(msg.Ctrl, stash)
	}
}

// runCycle executes one generation at this node (the body of Algorithm 1's
// outer while-loop). It consumes stashed early-arrival messages first and
// returns any messages belonging to a future generation.
func (n *Node) runCycle(cs *CycleStart, stash []Message) []Message {
	c := &Cycle{Gen: cs.Gen, TS: cs.TS, Tasks: cs.Tasks, node: n, em: newEmitter(n, cs.Gen)}
	ids := make([]queryset.QueryID, len(cs.Tasks))
	for i, t := range cs.Tasks {
		ids[i] = t.Query
	}
	c.all = queryset.Of(ids...)

	n.Op.Start(c)
	remaining := cs.ActiveProducers

	var future []Message
	handle := func(msg Message) {
		if msg.Gen != cs.Gen {
			if msg.Gen > cs.Gen {
				future = append(future, msg)
			}
			return // older generations are dead; drop
		}
		if msg.EOS {
			remaining--
			if ea, ok := n.Op.(EOSAware); ok {
				ea.EdgeEOS(c, msg.Edge)
			}
			return
		}
		if msg.Batch != nil {
			n.Op.Consume(c, msg.Batch)
		}
	}

	for _, msg := range stash {
		handle(msg)
	}
	for remaining > 0 {
		msg, ok := n.inbox.Pop()
		if !ok {
			return future
		}
		if msg.Ctrl != nil {
			panic(fmt.Sprintf("operators: node %s received CycleStart mid-cycle", n.Name))
		}
		handle(msg)
	}
	n.Op.Finish(c)
	c.em.flushEOS()
	if cs.OnDone != nil {
		cs.OnDone()
	}
	return future
}
