package operators

import (
	"sync"
	"time"

	"shareddb/internal/par"
	"shareddb/internal/queryset"
	"shareddb/internal/types"
)

// Node is one always-on operator in the global query plan. Each node owns a
// goroutine (the paper pins each operator to a CPU core with hard affinity;
// a long-lived goroutine is this implementation's substitute) and an
// unbounded incoming message queue. Nodes are connected by Edges.
//
// A node executes one generation cycle at a time, in generation order.
// Pipelining across generations happens between nodes: while this node is
// still draining generation N, an upstream node that finished N may already
// be producing generation N+1 — those messages (and the next CycleStart)
// are queued and handled once the current cycle completes.
type Node struct {
	ID        int
	Name      string
	Op        Operator
	Consumers []*Edge // outgoing edges, set during plan construction
	Producers []*Edge // incoming edges

	inbox *SyncedQueue
	wg    sync.WaitGroup

	// pool recycles batch buffers across this node's cycles; shared per
	// global plan (nil = allocate, for hand-built test nodes).
	pool *BatchPool
	// em is the node's reusable emitter (one cycle at a time per node).
	em emitter
	// prevInput is the tuple count consumed by the previous cycle, feeding
	// the adaptive worker budget (-1 until a cycle has run).
	prevInput int
}

// Edge connects a producer node to a consumer node. Query routing state is
// kept per generation: with pipelined execution several generations are in
// flight at once, so the coordinator installs the query set for generation
// G while earlier generations may still be traversing the edge. Producers
// snapshot their consumer edges' sets for their own generation at cycle
// start; the coordinator clears a generation's entries once its sink
// drains.
type Edge struct {
	From, To *Node

	mu      sync.RWMutex
	queries map[uint64]queryset.Set // generation → active query set
}

// SetQueries installs the active query set for generation gen.
func (e *Edge) SetQueries(gen uint64, qs queryset.Set) {
	e.mu.Lock()
	if e.queries == nil {
		e.queries = map[uint64]queryset.Set{}
	}
	e.queries[gen] = qs
	e.mu.Unlock()
}

// QueriesFor returns the edge's active query set for generation gen (the
// empty set if the edge serves no queries that generation).
func (e *Edge) QueriesFor(gen uint64) queryset.Set {
	e.mu.RLock()
	qs := e.queries[gen]
	e.mu.RUnlock()
	return qs
}

// ClearQueries drops generation gen's routing state once the generation has
// fully drained.
func (e *Edge) ClearQueries(gen uint64) {
	e.mu.Lock()
	delete(e.queries, gen)
	e.mu.Unlock()
}

// NewNode creates a node with the given operator behavior.
func NewNode(id int, name string, op Operator) *Node {
	return &Node{ID: id, Name: name, Op: op, inbox: NewSyncedQueue(), prevInput: -1}
}

// SetPool attaches the plan-wide batch free list. Must be set before Start;
// nodes without a pool allocate batches normally.
func (n *Node) SetPool(p *BatchPool) { n.pool = p }

// newEmitter builds a fresh emitter for one cycle (test entry point; the
// node's run loop reuses n.em via reset).
func newEmitter(n *Node, gen uint64) *emitter {
	e := &emitter{}
	e.reset(n, gen)
	return e
}

// Message is the unit of communication between nodes.
type Message struct {
	Gen   uint64
	Edge  *Edge
	Batch *Batch
	EOS   bool
	Ctrl  *CycleStart
}

// Connect wires an edge from producer to consumer and registers it on both.
func Connect(from, to *Node) *Edge {
	e := &Edge{From: from, To: to}
	from.Consumers = append(from.Consumers, e)
	to.Producers = append(to.Producers, e)
	return e
}

// CycleStart activates a node for one generation.
type CycleStart struct {
	Gen             uint64
	TS              uint64 // storage snapshot for this generation
	Tasks           []Task // per-query activations at this node
	ActiveProducers int    // producer edges that will send EOS this cycle
	Workers         int    // intra-operator parallelism budget (<=1 = serial)
	Columnar        bool   // scan sources read the columnar mirror this cycle
	OnDone          func() // optional completion callback (used by sinks)

	// Inc, when non-nil, switches the node's stateful operator to the
	// incremental path for this cycle: instead of rebuilding from its
	// producer stream (which the plan silences for the covered queries), the
	// operator primes or reuses persistent NodeState from the table and the
	// generation's write delta. Nil keeps the classic rebuild cycle.
	Inc *IncCycle

	// Col, when non-nil, switches a group-by node to the columnar
	// aggregation pushdown for this cycle: the operator feeds itself from
	// the table's columnar mirror in Start instead of consuming the scan
	// stream (silenced by the plan, like Inc). See ColCycle.
	Col *ColCycle

	// Pool, when non-nil, is the engine-owned worker pool the cycle's
	// data-parallel phases run on (nil = the package-level default pool).
	Pool *par.Pool

	// CostObserve, when non-nil, receives the cycle's operator-active
	// nanoseconds (time inside Start/Consume/EdgeEOS/Finish, excluding inbox
	// waits) once the cycle drains — the engine's per-statement cost
	// attribution hook. Called on the node goroutine after Finish but before
	// the cycle's EOS propagates downstream, so every node's report
	// happens-before the generation's sink OnDone.
	CostObserve func(tasks []Task, activeNs int64)
}

// Task is one active query's registration at a node for one generation.
// Spec carries the operator-specific bound configuration (e.g. a scan
// predicate with parameters substituted).
type Task struct {
	Query queryset.QueryID
	Spec  interface{}
}

// Cycle is the per-generation execution context handed to the operator.
type Cycle struct {
	Gen   uint64
	TS    uint64
	Tasks []Task

	// Workers is the worker-pool budget for this cycle: blocking operators
	// may fan their Finish phase (partitioned sort, partitioned aggregation,
	// join build) out to up to this many goroutines, and scan sources split
	// the table across it. <= 1 means strictly serial execution — the
	// contract is that Workers=1 output is byte-identical to the engine
	// before intra-operator parallelism existed.
	Workers int

	// Inc is the incremental-state activation for this cycle (nil = classic
	// rebuild). See IncCycle.
	Inc *IncCycle

	// Col is the columnar-aggregation activation for this cycle (nil = the
	// node consumes its producer stream as usual). See ColCycle.
	Col *ColCycle

	// Pool runs the cycle's data-parallel phases (nil-safe: a nil pool is
	// the package default). Operators call c.Pool.Do(c.Workers, n, fn).
	Pool *par.Pool

	// Columnar switches scan sources to the columnar mirror
	// (storage.SharedScanColumnar) for this cycle. Emission is bit-identical
	// to the row path, so only the scan operator inspects it.
	Columnar bool

	node *Node
	em   *emitter
	all  queryset.Set // cached union of task query ids

	// opState carries operator-private per-cycle state (a node executes at
	// most one cycle at a time, so a single slot suffices).
	opState interface{}

	// retained collects input batches an operator kept references into past
	// Consume (blocking operators buffering tuples); the node recycles them
	// once the cycle's Finish phase has drained.
	retained []*Batch
}

// Emit routes a result tuple to all interested consumers.
func (c *Cycle) Emit(stream int, row types.Row, qs queryset.Set) {
	c.em.emit(stream, row, qs)
}

// Retain marks an input batch as referenced beyond Consume (the operator
// buffered its tuples or their query sets). The node keeps the batch alive
// until the cycle's Finish phase completes instead of recycling it right
// after Consume returns. Idempotent within a cycle.
func (c *Cycle) Retain(b *Batch) {
	if b == nil || b.retained {
		return
	}
	b.retained = true
	c.retained = append(c.retained, b)
}

// Queries returns the set of query ids active at this node this cycle.
func (c *Cycle) Queries() queryset.Set { return c.all }

// Operator is the behavior of a shared operator, mirroring Algorithm 1:
// Start activates the cycle's queries, Consume is ProcessTuple over one
// incoming vector, Finish runs after end-of-stream from every active
// producer (where blocking operators such as sort emit their output).
type Operator interface {
	Start(c *Cycle)
	Consume(c *Cycle, b *Batch)
	Finish(c *Cycle)
}

// EOSAware operators (e.g. hash joins) are told when an individual producer
// edge reaches end-of-stream, so they can switch phases before the whole
// cycle ends (build → probe).
type EOSAware interface {
	EdgeEOS(c *Cycle, e *Edge)
}

// Start launches the node's goroutine.
func (n *Node) Start() {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.run()
	}()
}

// Stop closes the inbox and waits for the goroutine to exit. Pending work is
// abandoned; Stop is for shutdown, not generation control.
func (n *Node) Stop() {
	n.inbox.Close()
	n.wg.Wait()
}

// Inbox exposes the node's queue (the coordinator pushes CycleStart
// messages; producers push data).
func (n *Node) Inbox() *SyncedQueue { return n.inbox }

// run is the outer loop: wait for a generation activation, execute the
// cycle, repeat. With pipelined generations both data and CycleStart
// messages can overtake a node's current cycle (fast producers are already
// emitting generation N+1 while this node drains N), so out-of-cycle data
// is stashed and replayed when the matching activation runs, and queued
// CycleStarts execute in generation order once the current cycle ends.
func (n *Node) run() {
	var stash []Message
	var starts []*CycleStart
	for {
		if len(starts) == 0 {
			msg, ok := n.inbox.Pop()
			if !ok {
				return
			}
			if msg.Ctrl != nil {
				starts = append(starts, msg.Ctrl)
			} else {
				stash = append(stash, msg)
			}
			continue
		}
		// Run the oldest queued generation next (the coordinator dispatches
		// in order, but keep this robust to arrival reordering).
		mi := 0
		for i, cs := range starts {
			if cs.Gen < starts[mi].Gen {
				mi = i
			}
		}
		cs := starts[mi]
		starts = append(starts[:mi], starts[mi+1:]...)
		var ok bool
		stash, starts, ok = n.runCycle(cs, stash, starts)
		if !ok {
			return
		}
	}
}

// adaptiveWorkerMinInput is the previous-cycle input size below which a
// node's cycle runs strictly serial regardless of the configured worker
// budget: tiny cycles pay fork/join overhead (and the parallel operators'
// batch buffering) for nothing. A var so tests can lower it.
var adaptiveWorkerMinInput = 1024

// DisableAdaptiveWorkersForTest removes the tiny-cycle serial clamp and
// returns a restore func. Engine-level differential tests use it so their
// test-sized fixtures still exercise the parallel operator paths instead of
// being adaptively serialized after the first generation.
func DisableAdaptiveWorkersForTest() (restore func()) {
	old := adaptiveWorkerMinInput
	adaptiveWorkerMinInput = 0
	return func() { adaptiveWorkerMinInput = old }
}

// adaptWorkers picks the effective per-cycle parallelism from the worker
// budget and the node's previous-generation input size (the ROADMAP's
// adaptive worker budget): unknown history (-1, first cycle) trusts the
// budget; a previous cycle below adaptiveWorkerMinInput tuples stays
// serial. Source nodes (no producers) size their own work against the
// table instead (storage.SharedScanPartitioned's row-count clamp).
func adaptWorkers(budget, prevInput int) int {
	if budget > 1 && prevInput >= 0 && prevInput < adaptiveWorkerMinInput {
		return 1
	}
	return budget
}

// runCycle executes one generation at this node (the body of Algorithm 1's
// outer while-loop). It consumes stashed early-arrival messages first and
// returns messages and cycle starts belonging to future generations; ok is
// false when the inbox closed mid-cycle (shutdown).
func (n *Node) runCycle(cs *CycleStart, stash []Message, starts []*CycleStart) (future []Message, nextStarts []*CycleStart, ok bool) {
	workers := cs.Workers
	// A columnar-aggregation cycle builds its own input in Start (like a
	// source node), so the previous cycle's silenced stream input must not
	// adaptively serialize it.
	if len(n.Producers) > 0 && cs.Col == nil {
		workers = adaptWorkers(workers, n.prevInput)
	}
	n.em.reset(n, cs.Gen)
	c := &Cycle{Gen: cs.Gen, TS: cs.TS, Tasks: cs.Tasks, Workers: workers, Inc: cs.Inc, Col: cs.Col, Pool: cs.Pool, Columnar: cs.Columnar, node: n, em: &n.em}
	ids := make([]queryset.QueryID, len(cs.Tasks))
	for i, t := range cs.Tasks {
		ids[i] = t.Query
	}
	c.all = queryset.Of(ids...)

	// activeNs accumulates operator-busy time for the engine's per-statement
	// cost attribution; timing only runs when someone is observing.
	var activeNs int64
	timed := cs.CostObserve != nil
	run := func(f func()) {
		if !timed {
			f()
			return
		}
		t0 := time.Now()
		f()
		activeNs += time.Since(t0).Nanoseconds()
	}

	run(func() { n.Op.Start(c) })
	remaining := cs.ActiveProducers
	consumed := 0

	handle := func(msg Message) {
		if msg.Gen != cs.Gen {
			if msg.Gen > cs.Gen {
				future = append(future, msg)
			}
			return // older generations are dead; drop
		}
		if msg.EOS {
			remaining--
			if ea, aware := n.Op.(EOSAware); aware {
				run(func() { ea.EdgeEOS(c, msg.Edge) })
			}
			return
		}
		if msg.Batch != nil {
			consumed += len(msg.Batch.Tuples)
			run(func() { n.Op.Consume(c, msg.Batch) })
			// Recycle the batch unless the operator kept references into it
			// (c.Retain); retained batches are released after Finish.
			if !msg.Batch.retained {
				n.pool.Put(msg.Batch)
			}
		}
	}

	for _, msg := range stash {
		handle(msg)
	}
	for remaining > 0 {
		msg, popped := n.inbox.Pop()
		if !popped {
			return future, starts, false
		}
		if msg.Ctrl != nil {
			// Next generation's activation arrived while this cycle is still
			// draining: queue it for after the current cycle.
			starts = append(starts, msg.Ctrl)
			continue
		}
		handle(msg)
	}
	run(func() { n.Op.Finish(c) })
	// Report cost BEFORE propagating EOS: downstream cycles (ultimately the
	// sink's OnDone) only complete after every producer's EOS, so observing
	// first guarantees all attribution lands before the generation's
	// completion callback reads it.
	if timed {
		cs.CostObserve(cs.Tasks, activeNs)
	}
	c.em.flushEOS()
	// The generation has drained through this node: every batch the
	// operator buffered is now dead (emission copied the surviving query
	// sets into downstream batches) and returns to the pool.
	for _, b := range c.retained {
		n.pool.Put(b)
	}
	c.retained = nil
	n.prevInput = consumed
	if cs.OnDone != nil {
		cs.OnDone()
	}
	return future, starts, true
}
