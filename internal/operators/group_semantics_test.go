package operators

import (
	"fmt"
	"testing"

	"shareddb/internal/expr"
	"shareddb/internal/queryset"
	"shareddb/internal/types"
)

// SQL aggregate edge-case semantics (satellite audit): aggregates over empty
// groups and over all-NULL inputs must produce SQL's answers — COUNT is 0,
// SUM/AVG/MIN/MAX are NULL, never a zero value. NULL inputs are skipped, not
// aggregated as zeros. Each case runs through the serial path and the
// data-parallel path (Workers > 1), which must agree.

// lowerParallelAggThreshold forces the parallel aggregation/build path even
// for tiny inputs (which would otherwise take the small-input serial
// fallback), so these tests cover both code paths at workers > 1.
func lowerParallelAggThreshold(t *testing.T) {
	t.Helper()
	old := minParallelAggLen
	minParallelAggLen = 1
	t.Cleanup(func() { minParallelAggLen = old })
}

func runScalarAgg(t *testing.T, def AggDef, inputs []types.Value, workers int) types.Value {
	t.Helper()
	op := &GroupOp{
		Streams:   map[int]GroupStream{1: {GroupCols: nil, AggArgs: []expr.Expr{&expr.ColRef{Idx: 0}}}},
		Aggs:      []AggDef{def},
		OutStream: 2,
	}
	tasks := []Task{{Query: 1, Spec: GroupSpec{Scalar: true}}}
	batch := &Batch{Stream: 1}
	for _, v := range inputs {
		batch.Tuples = append(batch.Tuples, Tuple{Row: types.Row{v}, QS: queryset.Single(1)})
	}
	res := driveOp(op, tasks, workers, func(c *Cycle) {
		if len(batch.Tuples) > 0 {
			c.node.Op.Consume(c, batch)
		}
	})
	rows := res[1]
	if len(rows) != 1 {
		t.Fatalf("scalar aggregate emitted %d rows, want exactly 1", len(rows))
	}
	if len(rows[0]) != 1 {
		t.Fatalf("scalar aggregate row = %v, want 1 column", rows[0])
	}
	return rows[0][0]
}

func TestAggregateEdgeCaseSemantics(t *testing.T) {
	lowerParallelAggThreshold(t)
	i := func(v int64) types.Value { return types.NewInt(v) }
	f := func(v float64) types.Value { return types.NewFloat(v) }
	null := types.Null
	cases := []struct {
		name   string
		def    AggDef
		inputs []types.Value
		want   types.Value
	}{
		// empty input: one scalar row with SQL defaults
		{"COUNT/empty", AggDef{Kind: AggCount}, nil, i(0)},
		{"SUM/empty", AggDef{Kind: AggSum}, nil, null},
		{"AVG/empty", AggDef{Kind: AggAvg}, nil, null},
		{"MIN/empty", AggDef{Kind: AggMin}, nil, null},
		{"MAX/empty", AggDef{Kind: AggMax}, nil, null},

		// all-NULL input: same as empty for everything but COUNT(*)
		{"COUNT/all-null", AggDef{Kind: AggCount}, []types.Value{null, null, null}, i(0)},
		{"SUM/all-null", AggDef{Kind: AggSum}, []types.Value{null, null}, null},
		{"AVG/all-null", AggDef{Kind: AggAvg}, []types.Value{null, null}, null},
		{"MIN/all-null", AggDef{Kind: AggMin}, []types.Value{null, null}, null},
		{"MAX/all-null", AggDef{Kind: AggMax}, []types.Value{null}, null},

		// NULLs are skipped, not treated as zero
		{"COUNT/mixed", AggDef{Kind: AggCount}, []types.Value{i(5), null, i(7)}, i(2)},
		{"SUM/mixed", AggDef{Kind: AggSum}, []types.Value{i(5), null, i(7)}, i(12)},
		{"AVG/mixed", AggDef{Kind: AggAvg}, []types.Value{i(5), null, i(7)}, f(6)},
		{"MIN/mixed", AggDef{Kind: AggMin}, []types.Value{i(5), null, i(-7)}, i(-7)},
		{"MAX/mixed", AggDef{Kind: AggMax}, []types.Value{null, i(5), i(7), null}, i(7)},

		// MIN/MAX must not confuse SQL NULL with falsy values
		{"MIN/zero-is-not-null", AggDef{Kind: AggMin}, []types.Value{i(3), i(0), i(9)}, i(0)},
		{"MAX/negative-only", AggDef{Kind: AggMax}, []types.Value{i(-3), i(-9)}, i(-3)},
		{"SUM/zeros", AggDef{Kind: AggSum}, []types.Value{i(0), i(0)}, i(0)},

		// float accumulation
		{"SUM/float", AggDef{Kind: AggSum}, []types.Value{f(1.5), null, f(2.25)}, f(3.75)},
		{"AVG/float", AggDef{Kind: AggAvg}, []types.Value{f(1), f(2)}, f(1.5)},

		// DISTINCT: duplicates collapse before aggregation, NULLs still skip
		{"COUNT-DISTINCT", AggDef{Kind: AggCount, Distinct: true}, []types.Value{i(4), i(4), null, i(5)}, i(2)},
		{"SUM-DISTINCT", AggDef{Kind: AggSum, Distinct: true}, []types.Value{i(4), i(4), i(5)}, i(9)},
		{"AVG-DISTINCT", AggDef{Kind: AggAvg, Distinct: true}, []types.Value{i(2), i(2), i(4)}, f(3)},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				got := runScalarAgg(t, tc.def, tc.inputs, workers)
				if got.IsNull() != tc.want.IsNull() || (!got.IsNull() && got.Compare(tc.want) != 0) {
					t.Errorf("got %v, want %v", got, tc.want)
				}
			})
		}
	}
}

// A grouped (non-scalar) query over empty input emits no rows at all — SQL
// produces zero groups, not a NULL-filled one.
func TestGroupedAggregateEmptyInputEmitsNothing(t *testing.T) {
	for _, workers := range []int{1, 4} {
		op := &GroupOp{
			Streams:   map[int]GroupStream{1: {GroupCols: []int{0}, AggArgs: []expr.Expr{&expr.ColRef{Idx: 1}}}},
			Aggs:      []AggDef{{Kind: AggSum}},
			OutStream: 2,
		}
		res := driveOp(op, []Task{{Query: 1, Spec: GroupSpec{}}}, workers, func(*Cycle) {})
		if len(res[1]) != 0 {
			t.Errorf("workers=%d: empty grouped input emitted %v", workers, res[1])
		}
	}
}

// A query subscribed to none of a group's tuples must not receive that
// group, even though other queries materialized it.
func TestGroupPerQuerySubscriptionIsolation(t *testing.T) {
	lowerParallelAggThreshold(t)
	for _, workers := range []int{1, 4} {
		op := &GroupOp{
			Streams:   map[int]GroupStream{1: {GroupCols: []int{0}, AggArgs: []expr.Expr{&expr.ColRef{Idx: 1}}}},
			Aggs:      []AggDef{{Kind: AggSum}},
			OutStream: 2,
		}
		tasks := []Task{{Query: 1, Spec: GroupSpec{}}, {Query: 2, Spec: GroupSpec{}}}
		batch := &Batch{Stream: 1, Tuples: []Tuple{
			{Row: types.Row{types.NewInt(1), types.NewInt(10)}, QS: queryset.Of(1, 2)},
			{Row: types.Row{types.NewInt(2), types.NewInt(20)}, QS: queryset.Single(1)}, // group 2: only Q1
		}}
		res := driveOp(op, tasks, workers, func(c *Cycle) { c.node.Op.Consume(c, batch) })
		if len(res[1]) != 2 {
			t.Errorf("workers=%d: Q1 got %d groups, want 2", workers, len(res[1]))
		}
		if len(res[2]) != 1 {
			t.Errorf("workers=%d: Q2 got %d groups, want 1 (subscription isolation)", workers, len(res[2]))
		}
	}
}

// Scalar aggregates still emit their empty-input row when a HAVING
// predicate admits it, and suppress it when it does not.
func TestScalarAggregateEmptyInputHaving(t *testing.T) {
	mk := func() *GroupOp {
		return &GroupOp{
			Streams:   map[int]GroupStream{1: {GroupCols: nil, AggArgs: []expr.Expr{nil}}},
			Aggs:      []AggDef{{Kind: AggCount}},
			OutStream: 2,
		}
	}
	eq0 := &expr.Cmp{Op: expr.EQ, L: &expr.ColRef{Idx: 0}, R: &expr.Const{Val: types.NewInt(0)}}
	gt0 := &expr.Cmp{Op: expr.GT, L: &expr.ColRef{Idx: 0}, R: &expr.Const{Val: types.NewInt(0)}}
	for _, workers := range []int{1, 4} {
		res := driveOp(mk(), []Task{{Query: 1, Spec: GroupSpec{Scalar: true, Having: eq0}}}, workers, func(*Cycle) {})
		if len(res[1]) != 1 || res[1][0][0].AsInt() != 0 {
			t.Errorf("workers=%d: HAVING count=0 over empty input → %v, want one row [0]", workers, res[1])
		}
		res = driveOp(mk(), []Task{{Query: 1, Spec: GroupSpec{Scalar: true, Having: gt0}}}, workers, func(*Cycle) {})
		if len(res[1]) != 0 {
			t.Errorf("workers=%d: HAVING count>0 over empty input → %v, want no rows", workers, res[1])
		}
	}
}
