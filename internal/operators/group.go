package operators

import (
	"sort"

	"shareddb/internal/expr"
	"shareddb/internal/par"
	"shareddb/internal/queryset"
	"shareddb/internal/storage"
	"shareddb/internal/types"
)

// GroupOp is the shared group-by (paper §3.4): "In the first phase, the
// input tuples are grouped. Again, this phase can be shared so that all the
// tuples that are relevant for all active queries are grouped in one big
// batch. In the second phase, HAVING predicates and aggregation functions
// are applied to the tuples of each group ... for each query individually."
//
// Phase 1 hashes every tuple once on its group key (shared). Aggregate
// states are kept per (group, query) because each query aggregates only the
// tuples it subscribed to — this per-query fan-out is the NF2-inherent part
// of the work and is what the f(o) vs Σf(ni) trade-off of §3.5 is about.
//
// Grouping is unboxed: tuples hash into an open-addressed table keyed by a
// precomputed 64-bit hash of the group key values (collisions verified by
// value comparison), so the steady-state phase-1 path performs no key
// encoding and no per-tuple allocation for existing groups. The table and
// its backing arrays are reused across cycles.
type GroupOp struct {
	Streams   map[int]GroupStream
	Aggs      []AggDef
	OutStream int

	// st is the per-cycle state, owned by the operator and reused across
	// cycles (a node runs one cycle at a time).
	st          groupState
	keyScratch  []types.Value
	stepScratch []addStep
	single      [1]queryset.QueryID

	// entryFree / stateFree recycle a finished cycle's group entries and
	// per-(group, query) aggregate state slices (refilled in Finish), so the
	// steady-state rebuild path allocates only for emitted rows once the
	// free lists have warmed up to the workload's group count.
	entryFree []*groupEntry
	stateFree [][]aggState

	// columnar aggregation pushdown (Cycle.Col): the reusable scan buffers
	// and client list for feeding the aggregation straight from the table's
	// columnar mirror, plus the aggregate-argument scratch shared with the
	// serial batch path.
	colBufs    storage.ColScanBuffers
	colClients []storage.ScanClient
	argScratch []types.Value

	// inc is the persistent NodeState (Config.IncrementalState): the group
	// table plus a per-group RowID-ordered multiset of contributing rows,
	// maintained in place from generation write deltas. incActive marks
	// cycles emitting from it; the rebuild path never touches it.
	inc        groupTable
	incScratch []queryset.QueryID
	incActive  bool
}

// GroupStream configures extraction for one input stream.
type GroupStream struct {
	GroupCols []int       // group key columns in the stream's schema
	AggArgs   []expr.Expr // one per AggDef; nil for COUNT(*)
}

// AggKind enumerates aggregate functions.
type AggKind uint8

// Aggregate kinds.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

// AggDef declares one aggregate computed by the operator.
type AggDef struct {
	Kind     AggKind
	Distinct bool
}

// GroupSpec is the per-query activation: the bound HAVING predicate over
// the operator's output schema (group columns followed by aggregates).
// Scalar marks queries without GROUP BY columns, which per SQL semantics
// produce exactly one row even over empty input (COUNT(*) = 0).
type GroupSpec struct {
	Having expr.Expr
	Scalar bool
}

// aggState accumulates one aggregate for one (group, query).
type aggState struct {
	count    int64
	sumI     int64
	sumF     float64
	isFloat  bool
	min, max types.Value
	distinct map[string]struct{}
}

func (a *aggState) add(v types.Value, def AggDef) {
	if v.IsNull() {
		return // SQL aggregates ignore NULLs (COUNT(*) passes a marker)
	}
	if def.Distinct {
		if a.distinct == nil {
			a.distinct = map[string]struct{}{}
		}
		k := types.EncodeKey(v)
		if _, seen := a.distinct[k]; seen {
			return
		}
		a.distinct[k] = struct{}{}
	}
	// Each kind maintains only the fields its result() reads (and that
	// incRemoveRow subtracts: count/sumI, for COUNT/SUM/AVG only): COUNT
	// skips the sums and extrema, SUM/AVG skip the extrema, MIN/MAX skip
	// the counters. This runs once per (row, query) on the absorb hot path.
	switch def.Kind {
	case AggCount:
		a.count++
	case AggSum, AggAvg:
		a.count++
		switch v.Kind() {
		case types.KindFloat:
			a.isFloat = true
			a.sumF += v.Float
		case types.KindInt, types.KindBool, types.KindTime:
			a.sumI += v.Int
		}
	case AggMin:
		if a.min.IsNull() || v.Compare(a.min) < 0 {
			a.min = v
		}
	case AggMax:
		if a.max.IsNull() || v.Compare(a.max) > 0 {
			a.max = v
		}
	}
}

func (a *aggState) result(def AggDef) types.Value {
	switch def.Kind {
	case AggCount:
		return types.NewInt(a.count)
	case AggSum:
		if a.count == 0 {
			return types.Null
		}
		if a.isFloat {
			return types.NewFloat(a.sumF + float64(a.sumI))
		}
		return types.NewInt(a.sumI)
	case AggMin:
		return a.min
	case AggMax:
		return a.max
	case AggAvg:
		if a.count == 0 {
			return types.Null
		}
		return types.NewFloat((a.sumF + float64(a.sumI)) / float64(a.count))
	default:
		return types.Null
	}
}

type groupEntry struct {
	hash    uint64
	keyVals []types.Value
	// perQuery is a dense slice indexed by generation-scoped query id
	// (nil for queries without state); aggStates for one query are stored
	// contiguously.
	perQuery [][]aggState
	// inc carries the incremental bookkeeping (nil on the rebuild path):
	// the group's contributing rows as a RowID-ordered multiset, so
	// retractions that cannot subtract exactly (MIN/MAX, DISTINCT, float
	// sums) replay the group from it.
	inc *groupIncRows
}

// groupIncRows is one maintained group's row multiset plus per-query live
// tuple counts (a query's aggregate row exists iff it has >= 1 live tuple,
// mirroring the rebuild path where perQuery state exists iff a routed
// tuple arrived — including all-NULL tuples that leave count at 0).
type groupIncRows struct {
	rows   []groupIncRow // sorted by RowID ascending
	tuples []int64       // dense per-query live tuple count
	dirty  bool          // retraction could not subtract; replay from rows
}

// groupIncRow is one maintained contributing row: its evaluated aggregate
// arguments and the covered queries it routes to.
type groupIncRow struct {
	rid  uint64
	args []types.Value
	qs   queryset.Set
}

type groupState struct {
	groups  groupTable
	having  map[queryset.QueryID]expr.Expr
	scalar  map[queryset.QueryID]bool
	emitted map[queryset.QueryID]bool

	// pending buffers the cycle's input batches when the Finish phase will
	// aggregate them in parallel (Workers > 1). In serial mode tuples are
	// aggregated incrementally in Consume and pending stays nil.
	pending []*Batch
}

// Start initializes the cycle's hash table and per-query HAVING predicates.
func (g *GroupOp) Start(c *Cycle) {
	st := &g.st
	st.groups.reset()
	if st.having == nil {
		st.having = map[queryset.QueryID]expr.Expr{}
		st.scalar = map[queryset.QueryID]bool{}
		st.emitted = map[queryset.QueryID]bool{}
	} else {
		clear(st.having)
		clear(st.scalar)
		clear(st.emitted)
	}
	for _, t := range c.Tasks {
		spec, _ := t.Spec.(GroupSpec)
		st.having[t.Query] = spec.Having
		if spec.Scalar {
			st.scalar[t.Query] = true
		}
	}
	c.opState = st
	g.incActive = false
	if c.Inc != nil {
		g.startIncremental(c)
	}
	if c.Col != nil {
		g.startColumnar(c, st)
	}
}

// startColumnar runs the aggregation pushdown: the covered queries' bound
// scan predicates become columnar scan clients and the mirror scan feeds
// matched rows straight into the cycle's group table — no scan→group stream,
// no Batch materialization. The scan emits in ascending RowID order (at any
// worker count) and absorbRow runs serially on this goroutine, so the group
// table's insertion order — and therefore Finish emission — is byte-identical
// to the row path's serial rebuild.
func (g *GroupOp) startColumnar(c *Cycle, st *groupState) {
	cc := c.Col
	cfg := g.incStream()
	clients := g.colClients[:0]
	for _, p := range cc.Preds {
		clients = append(clients, storage.ScanClient{ID: p.QID, Pred: p.Pred})
	}
	if cap(g.argScratch) < len(g.Aggs) {
		g.argScratch = make([]types.Value, len(g.Aggs))
	}
	args := g.argScratch[:len(g.Aggs)]
	cc.Table.SharedScanColumnar(c.TS, clients, c.Workers, &g.colBufs, func(_ storage.RowID, row types.Row, qs queryset.Set) {
		g.absorbRow(st, cfg, row, qs, args)
	})
	clear(clients)
	g.colClients = clients[:0]
}

// newEntry takes a group entry from the free list (reusing its key and
// per-query backing arrays) or allocates one.
func (g *GroupOp) newEntry(h uint64, keyVals []types.Value) *groupEntry {
	if n := len(g.entryFree); n > 0 {
		ge := g.entryFree[n-1]
		g.entryFree[n-1] = nil
		g.entryFree = g.entryFree[:n-1]
		ge.hash = h
		ge.keyVals = append(ge.keyVals[:0], keyVals...)
		return ge
	}
	return &groupEntry{hash: h, keyVals: append([]types.Value(nil), keyVals...)}
}

// newStates takes a cleared aggregate-state slice (len(g.Aggs)) from the
// free list or allocates one.
func (g *GroupOp) newStates() []aggState {
	if n := len(g.stateFree); n > 0 {
		s := g.stateFree[n-1]
		g.stateFree[n-1] = nil
		g.stateFree = g.stateFree[:n-1]
		return s
	}
	return make([]aggState, len(g.Aggs))
}

// recycleGroups returns a drained cycle's rebuilt group entries and their
// aggregate states to the operator free lists, dropping every value
// reference so recycled rows are not pinned. Maintained (incremental)
// entries live in g.inc, never in the cycle table, so everything here is
// safe to reuse.
func (g *GroupOp) recycleGroups(st *groupState) {
	for _, ge := range st.groups.entries {
		if ge.inc != nil {
			continue
		}
		for q, states := range ge.perQuery {
			if states != nil {
				clear(states)
				g.stateFree = append(g.stateFree, states)
				ge.perQuery[q] = nil
			}
		}
		ge.perQuery = ge.perQuery[:0]
		clear(ge.keyVals)
		ge.keyVals = ge.keyVals[:0]
		g.entryFree = append(g.entryFree, ge)
	}
}

// incStream returns the operator's single input stream configuration (the
// plan only grants incremental activations to single-stream group nodes).
func (g *GroupOp) incStream() GroupStream {
	for _, cfg := range g.Streams {
		return cfg
	}
	return GroupStream{}
}

// startIncremental brings the persistent group state up to the cycle's
// snapshot: prime replays a base-table scan in RowID order (exactly the
// serial rebuild's arrival order), reuse applies the generation delta with
// retractable-aggregate fast paths (COUNT/SUM/AVG over non-float values
// subtract in place) and per-group replay from the maintained multiset for
// everything else (MIN/MAX, DISTINCT, float accumulation order).
func (g *GroupOp) startIncremental(c *Cycle) {
	ic := c.Inc
	cfg := g.incStream()
	switch ic.Mode {
	case IncPrime:
		g.inc.reset()
		scratch := g.incScratch
		ic.Table.ScanVisible(c.TS, func(rid storage.RowID, row types.Row) bool {
			var qs queryset.Set
			qs, scratch = evalIncPreds(ic.Preds, row, scratch)
			if !qs.Empty() {
				g.incAddRow(cfg, rid, row, qs)
			}
			return true
		})
		g.incScratch = scratch
	case IncReuse:
		if td := ic.Delta; td != nil {
			scratch := g.incScratch
			var qs queryset.Set
			for _, dr := range td.Deleted {
				qs, scratch = evalIncPreds(ic.Preds, dr.Row, scratch)
				if !qs.Empty() {
					g.incRemoveRow(cfg, dr.RID, dr.Row)
				}
			}
			for _, ur := range td.Updated {
				qs, scratch = evalIncPreds(ic.Preds, ur.Old, scratch)
				if !qs.Empty() {
					g.incRemoveRow(cfg, ur.RID, ur.Old)
				}
				qs, scratch = evalIncPreds(ic.Preds, ur.New, scratch)
				if !qs.Empty() {
					g.incAddRow(cfg, ur.RID, ur.New, qs)
				}
			}
			for _, dr := range td.Inserted {
				qs, scratch = evalIncPreds(ic.Preds, dr.Row, scratch)
				if !qs.Empty() {
					g.incAddRow(cfg, dr.RID, dr.Row, qs)
				}
			}
			g.incScratch = scratch
			g.incReplayDirty()
		}
	}
	g.incActive = true
}

// incAddRow routes one table row into its maintained group. Additions are
// exact for every aggregate kind when appended in rebuild order (fresh
// inserts carry table-maximal RowIDs); an out-of-order float value would
// change accumulation order, so it marks the group for replay instead.
func (g *GroupOp) incAddRow(cfg GroupStream, rid uint64, row types.Row, qs queryset.Set) {
	keyVals, h := extractKeyHash(row, cfg.GroupCols, g.keyScratch)
	g.keyScratch = keyVals
	ge := g.inc.lookup(h, keyVals)
	if ge == nil {
		ge = &groupEntry{hash: h, keyVals: append([]types.Value(nil), keyVals...), inc: &groupIncRows{}}
		g.inc.insert(ge)
	}
	args := make([]types.Value, len(g.Aggs))
	for i := range g.Aggs {
		if i < len(cfg.AggArgs) && cfg.AggArgs[i] != nil {
			args[i] = cfg.AggArgs[i].Eval(row, nil)
		} else {
			args[i] = types.NewInt(1) // COUNT(*) marker
		}
	}
	r := groupIncRow{rid: rid, args: args, qs: qs}
	rows := ge.inc.rows
	if n := len(rows); n == 0 || rows[n-1].rid < rid {
		ge.inc.rows = append(rows, r)
	} else {
		// Re-inserted update: keep the multiset RowID-ordered, and replay
		// unless the insertion is order-independent (no float values).
		i := sort.Search(n, func(i int) bool { return rows[i].rid >= rid })
		ge.inc.rows = append(rows, groupIncRow{})
		copy(ge.inc.rows[i+1:], ge.inc.rows[i:])
		ge.inc.rows[i] = r
		for _, v := range args {
			if !v.IsNull() && v.Kind() == types.KindFloat {
				ge.inc.dirty = true
				break
			}
		}
	}
	if ge.inc.dirty {
		return // replay recomputes states and counts from rows
	}
	g.incApply(ge, args, qs)
}

// incApply folds one row's arguments into a group's per-query states and
// live-tuple counts (the state half of absorb's inner loop).
func (g *GroupOp) incApply(ge *groupEntry, args []types.Value, qs queryset.Set) {
	for _, qid := range qs.IDs() {
		for int(qid) >= len(ge.perQuery) {
			ge.perQuery = append(ge.perQuery, nil)
		}
		for int(qid) >= len(ge.inc.tuples) {
			ge.inc.tuples = append(ge.inc.tuples, 0)
		}
		states := ge.perQuery[qid]
		if states == nil {
			states = make([]aggState, len(g.Aggs))
			ge.perQuery[qid] = states
		}
		for i, def := range g.Aggs {
			states[i].add(args[i], def)
		}
		ge.inc.tuples[qid]++
	}
}

// incRemoveRow retracts one row from its maintained group. COUNT/SUM/AVG
// over non-float values subtract exactly; anything else (MIN/MAX, DISTINCT,
// float sums) marks the group dirty for replay from the multiset.
func (g *GroupOp) incRemoveRow(cfg GroupStream, rid uint64, oldRow types.Row) {
	keyVals, h := extractKeyHash(oldRow, cfg.GroupCols, g.keyScratch)
	g.keyScratch = keyVals
	ge := g.inc.lookup(h, keyVals)
	if ge == nil || ge.inc == nil {
		return // row never contributed (e.g. inserted before the state primed a narrower query set)
	}
	rows := ge.inc.rows
	i := sort.Search(len(rows), func(i int) bool { return rows[i].rid >= rid })
	if i >= len(rows) || rows[i].rid != rid {
		return
	}
	r := rows[i]
	ge.inc.rows = append(rows[:i], rows[i+1:]...)
	if ge.inc.dirty {
		return
	}
	if !g.incSubtractable(r.args) {
		ge.inc.dirty = true
		return
	}
	for _, qid := range r.qs.IDs() {
		states := ge.perQuery[qid]
		for ai, v := range r.args {
			if v.IsNull() {
				continue // add skipped NULLs; so does the retraction
			}
			states[ai].count--
			switch v.Kind() {
			case types.KindInt, types.KindBool, types.KindTime:
				states[ai].sumI -= v.Int
			}
			// min/max go stale, but COUNT/SUM/AVG results never read them.
		}
		ge.inc.tuples[qid]--
		if ge.inc.tuples[qid] == 0 {
			ge.perQuery[qid] = nil // rebuild would have no state for this query
		}
	}
}

// incSubtractable reports whether a retraction with these argument values
// subtracts exactly: every aggregate must be COUNT/SUM/AVG without
// DISTINCT, over non-float (exact integer) values.
func (g *GroupOp) incSubtractable(args []types.Value) bool {
	for i, def := range g.Aggs {
		switch def.Kind {
		case AggCount, AggSum, AggAvg:
		default:
			return false
		}
		if def.Distinct {
			return false
		}
		if v := args[i]; !v.IsNull() && v.Kind() == types.KindFloat {
			return false
		}
	}
	return true
}

// incReplayDirty rebuilds every dirty group's per-query states from its
// RowID-ordered multiset — exactly the serial rebuild's arrival order, so
// the replayed states are byte-identical to a from-scratch cycle.
func (g *GroupOp) incReplayDirty() {
	for _, ge := range g.inc.entries {
		if ge.inc == nil || !ge.inc.dirty {
			continue
		}
		for q := range ge.perQuery {
			ge.perQuery[q] = nil
		}
		clear(ge.inc.tuples)
		ge.inc.dirty = false
		for _, r := range ge.inc.rows {
			g.incApply(ge, r.args, r.qs)
		}
	}
}

// Consume hashes each tuple into its group once and updates the aggregate
// state of every subscribed query. With a worker budget above 1 the batch is
// only buffered (and retained: the deferred aggregation reads its tuples in
// Finish): the partitioned hash aggregation runs there, where the whole
// input is known and can be split across workers.
func (g *GroupOp) Consume(c *Cycle, b *Batch) {
	if _, ok := g.Streams[b.Stream]; !ok {
		return
	}
	st := c.opState.(*groupState)
	if c.Workers > 1 {
		c.Retain(b)
		st.pending = append(st.pending, b)
		return
	}
	g.absorb(st, b)
}

// absorb is the serial aggregation of one batch (the body of ProcessTuple).
func (g *GroupOp) absorb(st *groupState, b *Batch) {
	cfg := g.Streams[b.Stream]
	var argVals [8]types.Value // stack buffer for the common agg counts
	var args []types.Value
	if len(g.Aggs) > len(argVals) {
		args = make([]types.Value, len(g.Aggs))
	} else {
		args = argVals[:len(g.Aggs)]
	}
	for ti := range b.Tuples {
		t := &b.Tuples[ti]
		g.absorbRow(st, cfg, t.Row, t.QS, args)
	}
}

// addStep is one aggregate's precompiled update for one input row: the
// per-(row, query) inner loop replays it against every subscribed query's
// state without re-dispatching on NULL-ness, Distinct or value kind. The
// fast ops perform exactly the updates aggState.add would (same fields,
// same order), so the result bytes are identical; anything add handles
// with per-state bookkeeping (DISTINCT sets, MIN/MAX compares) stays on
// the generic path.
type addStep struct {
	op  uint8 // stepSkip..stepGeneric
	i64 int64
	f64 float64
}

const (
	stepSkip     = iota // NULL argument: aggregates ignore it
	stepCount           // count++ (COUNT, or SUM/AVG over non-numeric)
	stepSumInt          // count++, sumI += i64
	stepSumFloat        // count++, isFloat = true, sumF += f64
	stepGeneric         // aggState.add (DISTINCT, MIN, MAX)
)

// compileAddSteps lowers one row's evaluated aggregate arguments into the
// per-agg update plan shared by every query subscribed to the row.
func (g *GroupOp) compileAddSteps(args []types.Value) []addStep {
	steps := g.stepScratch
	if cap(steps) < len(g.Aggs) {
		steps = make([]addStep, len(g.Aggs))
		g.stepScratch = steps
	}
	steps = steps[:len(g.Aggs)]
	for i, def := range g.Aggs {
		v := args[i]
		switch {
		case v.IsNull():
			steps[i] = addStep{op: stepSkip}
		case def.Distinct || def.Kind == AggMin || def.Kind == AggMax:
			steps[i] = addStep{op: stepGeneric}
		case def.Kind == AggCount:
			steps[i] = addStep{op: stepCount}
		default: // AggSum, AggAvg
			switch v.Kind() {
			case types.KindFloat:
				steps[i] = addStep{op: stepSumFloat, f64: v.Float}
			case types.KindInt, types.KindBool, types.KindTime:
				steps[i] = addStep{op: stepSumInt, i64: v.Int}
			default:
				steps[i] = addStep{op: stepCount} // add only counts non-numeric
			}
		}
	}
	return steps
}

// absorbRow folds one routed row into the cycle's group table — the shared
// per-tuple body of the serial batch path and the columnar scan feed. args
// is caller scratch of len(g.Aggs); qs may be borrowed (it is read, never
// retained).
func (g *GroupOp) absorbRow(st *groupState, cfg GroupStream, row types.Row, qs queryset.Set, args []types.Value) {
	keyVals, h := extractKeyHash(row, cfg.GroupCols, g.keyScratch)
	g.keyScratch = keyVals
	ge := st.groups.lookup(h, keyVals)
	if ge == nil {
		ge = g.newEntry(h, keyVals)
		st.groups.insert(ge)
	}
	// evaluate aggregate arguments once per tuple, shared across
	// subscribed queries
	for i := range g.Aggs {
		if i < len(cfg.AggArgs) && cfg.AggArgs[i] != nil {
			args[i] = cfg.AggArgs[i].Eval(row, nil)
		} else {
			args[i] = types.NewInt(1) // COUNT(*) marker
		}
	}
	steps := g.compileAddSteps(args)
	for _, qid := range qs.IDs() {
		for int(qid) >= len(ge.perQuery) {
			ge.perQuery = append(ge.perQuery, nil)
		}
		states := ge.perQuery[qid]
		if states == nil {
			states = g.newStates()
			ge.perQuery[qid] = states
		}
		for i := range steps {
			a := &states[i]
			switch steps[i].op {
			case stepCount:
				a.count++
			case stepSumInt:
				a.count++
				a.sumI += steps[i].i64
			case stepSumFloat:
				a.count++
				a.isFloat = true
				a.sumF += steps[i].f64
			case stepGeneric:
				a.add(args[i], g.Aggs[i])
			}
		}
	}
}

// aggregateParallel is the data-parallel grouping phase (paper §4.2) run
// over the batches buffered by Consume when Workers > 1. It is a two-step
// partitioned hash aggregation with a combine step:
//
//  1. Partition: the buffered batches are split into contiguous chunks, one
//     per worker; each worker extracts every tuple's group key and aggregate
//     arguments once and routes the tuple to one of `workers` key-hash
//     buckets. Chunks are contiguous, so concatenating a bucket's entries in
//     chunk order preserves the original tuple arrival order.
//  2. Combine: each bucket is owned by exactly one worker, which replays its
//     entries (in arrival order) into a private hash table with the same
//     per-(group, query) aggregate updates as the serial path. Because a
//     group key hashes to exactly one bucket, the bucket tables are disjoint
//     and merge into st.groups by plain insertion.
//
// Keeping per-group arrival order makes the parallel path numerically
// identical to serial execution (float sums accumulate in the same order),
// and key-ownership avoids having to merge partial aggregate states — which
// would be impossible for DISTINCT aggregates without re-shipping values.
func (g *GroupOp) aggregateParallel(c *Cycle, st *groupState) {
	total := 0
	for _, b := range st.pending {
		total += len(b.Tuples)
	}
	if total < minParallelAggLen {
		// Small generation: the fork/join and per-tuple entry allocations
		// cost more than they save — replay serially (identical semantics).
		for _, b := range st.pending {
			g.absorb(st, b)
		}
		clear(st.pending)
		st.pending = st.pending[:0]
		return
	}
	workers := c.Workers
	type entry struct {
		hash    uint64
		keyVals []types.Value
		args    []types.Value
		qs      queryset.Set
	}
	chunkBounds := par.Split(len(st.pending), workers)
	nchunks := len(chunkBounds) - 1
	buckets := make([][][]entry, nchunks) // [chunk][bucket] → entries
	c.Pool.Do(workers, nchunks, func(ci int) {
		bucketed := make([][]entry, workers)
		for _, b := range st.pending[chunkBounds[ci]:chunkBounds[ci+1]] {
			cfg, ok := g.Streams[b.Stream]
			if !ok {
				continue
			}
			for ti := range b.Tuples {
				t := &b.Tuples[ti]
				// nil dst: each buffered entry owns its key values.
				keyVals, h := extractKeyHash(t.Row, cfg.GroupCols, nil)
				args := make([]types.Value, len(g.Aggs))
				for i := range g.Aggs {
					if i < len(cfg.AggArgs) && cfg.AggArgs[i] != nil {
						args[i] = cfg.AggArgs[i].Eval(t.Row, nil)
					} else {
						args[i] = types.NewInt(1) // COUNT(*) marker
					}
				}
				bi := int(h % uint64(workers))
				bucketed[bi] = append(bucketed[bi], entry{hash: h, keyVals: keyVals, args: args, qs: t.QS})
			}
		}
		buckets[ci] = bucketed
	})
	locals := make([]groupTable, workers)
	c.Pool.Do(workers, workers, func(bi int) {
		m := &locals[bi]
		for ci := 0; ci < nchunks; ci++ {
			for _, e := range buckets[ci][bi] {
				ge := m.lookup(e.hash, e.keyVals)
				if ge == nil {
					ge = &groupEntry{hash: e.hash, keyVals: e.keyVals}
					m.insert(ge)
				}
				for _, qid := range e.qs.IDs() {
					for int(qid) >= len(ge.perQuery) {
						ge.perQuery = append(ge.perQuery, nil)
					}
					states := ge.perQuery[qid]
					if states == nil {
						states = make([]aggState, len(g.Aggs))
						ge.perQuery[qid] = states
					}
					for i, def := range g.Aggs {
						states[i].add(e.args[i], def)
					}
				}
			}
		}
	})
	// Buckets are hash-disjoint (a key lives in exactly one), so the local
	// tables merge into the cycle table by plain insertion, bucket order —
	// deterministic because bucket assignment and entry order are.
	for bi := range locals {
		for _, ge := range locals[bi].entries {
			st.groups.insert(ge)
		}
	}
	clear(st.pending)
	st.pending = st.pending[:0]
}

// Finish runs phase 2: per (group, query) HAVING evaluation and emission.
// When Consume buffered input for parallel execution, the partitioned
// aggregation runs first; emission itself stays on the cycle goroutine.
// Groups emit in first-arrival order (the insertion order of the unboxed
// table), making output deterministic across runs.
func (g *GroupOp) Finish(c *Cycle) {
	st := c.opState.(*groupState)
	if len(st.pending) > 0 {
		g.aggregateParallel(c, st)
	}
	if g.incActive {
		g.emitIncremental(c, st)
	}
	for _, ge := range st.groups.entries {
		g.emitGroup(c, st, ge, nil)
	}
	// scalar aggregates over empty input produce one row of defaults
	for qid, isScalar := range st.scalar {
		if !isScalar || st.emitted[qid] {
			continue
		}
		row := make(types.Row, len(g.Aggs))
		empty := &aggState{}
		for i, def := range g.Aggs {
			row[i] = empty.result(def)
		}
		if h := st.having[qid]; h != nil && !expr.TruthyEval(h, row, nil) {
			continue
		}
		g.single[0] = qid
		c.Emit(g.OutStream, row, queryset.FromSorted(g.single[:1]))
	}
	g.recycleGroups(st)
	st.groups.reset() // drop group state references between cycles
	c.opState = nil
	g.incActive = false
}

// emitGroup emits one group's per-query aggregate rows (ascending query
// id). tuples, when non-nil, is the incremental path's live-count filter: a
// query emits iff it still has >= 1 live tuple in the group (the rebuild
// path's "state exists" condition).
func (g *GroupOp) emitGroup(c *Cycle, st *groupState, ge *groupEntry, tuples []int64) {
	for q, states := range ge.perQuery {
		if states == nil {
			continue
		}
		if tuples != nil && (q >= len(tuples) || tuples[q] == 0) {
			continue
		}
		qid := queryset.QueryID(q)
		row := make(types.Row, 0, len(ge.keyVals)+len(g.Aggs))
		row = append(row, ge.keyVals...)
		for i, def := range g.Aggs {
			row = append(row, states[i].result(def))
		}
		if h := st.having[qid]; h != nil && !expr.TruthyEval(h, row, nil) {
			continue
		}
		st.emitted[qid] = true
		g.single[0] = qid
		c.Emit(g.OutStream, row, queryset.FromSorted(g.single[:1]))
	}
}

// emitIncremental emits the maintained groups in ascending minimum-RowID
// order — the first-arrival order a serial rebuild's insertion-ordered
// table produces — so incremental output is byte-identical to a rebuild.
func (g *GroupOp) emitIncremental(c *Cycle, st *groupState) {
	live := make([]*groupEntry, 0, len(g.inc.entries))
	for _, ge := range g.inc.entries {
		if ge.inc != nil && len(ge.inc.rows) > 0 {
			live = append(live, ge)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].inc.rows[0].rid < live[j].inc.rows[0].rid })
	for _, ge := range live {
		g.emitGroup(c, st, ge, ge.inc.tuples)
	}
}
