package operators

import (
	"shareddb/internal/expr"
	"shareddb/internal/par"
	"shareddb/internal/queryset"
	"shareddb/internal/types"
)

// GroupOp is the shared group-by (paper §3.4): "In the first phase, the
// input tuples are grouped. Again, this phase can be shared so that all the
// tuples that are relevant for all active queries are grouped in one big
// batch. In the second phase, HAVING predicates and aggregation functions
// are applied to the tuples of each group ... for each query individually."
//
// Phase 1 hashes every tuple once on its group key (shared). Aggregate
// states are kept per (group, query) because each query aggregates only the
// tuples it subscribed to — this per-query fan-out is the NF2-inherent part
// of the work and is what the f(o) vs Σf(ni) trade-off of §3.5 is about.
//
// Grouping is unboxed: tuples hash into an open-addressed table keyed by a
// precomputed 64-bit hash of the group key values (collisions verified by
// value comparison), so the steady-state phase-1 path performs no key
// encoding and no per-tuple allocation for existing groups. The table and
// its backing arrays are reused across cycles.
type GroupOp struct {
	Streams   map[int]GroupStream
	Aggs      []AggDef
	OutStream int

	// st is the per-cycle state, owned by the operator and reused across
	// cycles (a node runs one cycle at a time).
	st         groupState
	keyScratch []types.Value
	single     [1]queryset.QueryID
}

// GroupStream configures extraction for one input stream.
type GroupStream struct {
	GroupCols []int       // group key columns in the stream's schema
	AggArgs   []expr.Expr // one per AggDef; nil for COUNT(*)
}

// AggKind enumerates aggregate functions.
type AggKind uint8

// Aggregate kinds.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

// AggDef declares one aggregate computed by the operator.
type AggDef struct {
	Kind     AggKind
	Distinct bool
}

// GroupSpec is the per-query activation: the bound HAVING predicate over
// the operator's output schema (group columns followed by aggregates).
// Scalar marks queries without GROUP BY columns, which per SQL semantics
// produce exactly one row even over empty input (COUNT(*) = 0).
type GroupSpec struct {
	Having expr.Expr
	Scalar bool
}

// aggState accumulates one aggregate for one (group, query).
type aggState struct {
	count    int64
	sumI     int64
	sumF     float64
	isFloat  bool
	min, max types.Value
	distinct map[string]struct{}
}

func (a *aggState) add(v types.Value, def AggDef) {
	if v.IsNull() {
		return // SQL aggregates ignore NULLs (COUNT(*) passes a marker)
	}
	if def.Distinct {
		if a.distinct == nil {
			a.distinct = map[string]struct{}{}
		}
		k := types.EncodeKey(v)
		if _, seen := a.distinct[k]; seen {
			return
		}
		a.distinct[k] = struct{}{}
	}
	a.count++
	switch v.Kind() {
	case types.KindFloat:
		a.isFloat = true
		a.sumF += v.Float
	case types.KindInt, types.KindBool, types.KindTime:
		a.sumI += v.Int
	}
	if a.min.IsNull() || v.Compare(a.min) < 0 {
		a.min = v
	}
	if a.max.IsNull() || v.Compare(a.max) > 0 {
		a.max = v
	}
}

func (a *aggState) result(def AggDef) types.Value {
	switch def.Kind {
	case AggCount:
		return types.NewInt(a.count)
	case AggSum:
		if a.count == 0 {
			return types.Null
		}
		if a.isFloat {
			return types.NewFloat(a.sumF + float64(a.sumI))
		}
		return types.NewInt(a.sumI)
	case AggMin:
		return a.min
	case AggMax:
		return a.max
	case AggAvg:
		if a.count == 0 {
			return types.Null
		}
		return types.NewFloat((a.sumF + float64(a.sumI)) / float64(a.count))
	default:
		return types.Null
	}
}

type groupEntry struct {
	hash    uint64
	keyVals []types.Value
	// perQuery is a dense slice indexed by generation-scoped query id
	// (nil for queries without state); aggStates for one query are stored
	// contiguously.
	perQuery [][]aggState
}

type groupState struct {
	groups  groupTable
	having  map[queryset.QueryID]expr.Expr
	scalar  map[queryset.QueryID]bool
	emitted map[queryset.QueryID]bool

	// pending buffers the cycle's input batches when the Finish phase will
	// aggregate them in parallel (Workers > 1). In serial mode tuples are
	// aggregated incrementally in Consume and pending stays nil.
	pending []*Batch
}

// Start initializes the cycle's hash table and per-query HAVING predicates.
func (g *GroupOp) Start(c *Cycle) {
	st := &g.st
	st.groups.reset()
	if st.having == nil {
		st.having = map[queryset.QueryID]expr.Expr{}
		st.scalar = map[queryset.QueryID]bool{}
		st.emitted = map[queryset.QueryID]bool{}
	} else {
		clear(st.having)
		clear(st.scalar)
		clear(st.emitted)
	}
	for _, t := range c.Tasks {
		spec, _ := t.Spec.(GroupSpec)
		st.having[t.Query] = spec.Having
		if spec.Scalar {
			st.scalar[t.Query] = true
		}
	}
	c.opState = st
}

// Consume hashes each tuple into its group once and updates the aggregate
// state of every subscribed query. With a worker budget above 1 the batch is
// only buffered (and retained: the deferred aggregation reads its tuples in
// Finish): the partitioned hash aggregation runs there, where the whole
// input is known and can be split across workers.
func (g *GroupOp) Consume(c *Cycle, b *Batch) {
	if _, ok := g.Streams[b.Stream]; !ok {
		return
	}
	st := c.opState.(*groupState)
	if c.Workers > 1 {
		c.Retain(b)
		st.pending = append(st.pending, b)
		return
	}
	g.absorb(st, b)
}

// absorb is the serial aggregation of one batch (the body of ProcessTuple).
func (g *GroupOp) absorb(st *groupState, b *Batch) {
	cfg := g.Streams[b.Stream]
	var argVals [8]types.Value // stack buffer for the common agg counts
	var args []types.Value
	if len(g.Aggs) > len(argVals) {
		args = make([]types.Value, len(g.Aggs))
	} else {
		args = argVals[:len(g.Aggs)]
	}
	for ti := range b.Tuples {
		t := &b.Tuples[ti]
		keyVals, h := extractKeyHash(t.Row, cfg.GroupCols, g.keyScratch)
		g.keyScratch = keyVals
		ge := st.groups.lookup(h, keyVals)
		if ge == nil {
			ge = &groupEntry{hash: h, keyVals: append([]types.Value(nil), keyVals...)}
			st.groups.insert(ge)
		}
		// evaluate aggregate arguments once per tuple, shared across
		// subscribed queries
		for i := range g.Aggs {
			if i < len(cfg.AggArgs) && cfg.AggArgs[i] != nil {
				args[i] = cfg.AggArgs[i].Eval(t.Row, nil)
			} else {
				args[i] = types.NewInt(1) // COUNT(*) marker
			}
		}
		for _, qid := range t.QS.IDs() {
			for int(qid) >= len(ge.perQuery) {
				ge.perQuery = append(ge.perQuery, nil)
			}
			states := ge.perQuery[qid]
			if states == nil {
				states = make([]aggState, len(g.Aggs))
				ge.perQuery[qid] = states
			}
			for i, def := range g.Aggs {
				states[i].add(args[i], def)
			}
		}
	}
}

// aggregateParallel is the data-parallel grouping phase (paper §4.2) run
// over the batches buffered by Consume when Workers > 1. It is a two-step
// partitioned hash aggregation with a combine step:
//
//  1. Partition: the buffered batches are split into contiguous chunks, one
//     per worker; each worker extracts every tuple's group key and aggregate
//     arguments once and routes the tuple to one of `workers` key-hash
//     buckets. Chunks are contiguous, so concatenating a bucket's entries in
//     chunk order preserves the original tuple arrival order.
//  2. Combine: each bucket is owned by exactly one worker, which replays its
//     entries (in arrival order) into a private hash table with the same
//     per-(group, query) aggregate updates as the serial path. Because a
//     group key hashes to exactly one bucket, the bucket tables are disjoint
//     and merge into st.groups by plain insertion.
//
// Keeping per-group arrival order makes the parallel path numerically
// identical to serial execution (float sums accumulate in the same order),
// and key-ownership avoids having to merge partial aggregate states — which
// would be impossible for DISTINCT aggregates without re-shipping values.
func (g *GroupOp) aggregateParallel(c *Cycle, st *groupState) {
	total := 0
	for _, b := range st.pending {
		total += len(b.Tuples)
	}
	if total < minParallelAggLen {
		// Small generation: the fork/join and per-tuple entry allocations
		// cost more than they save — replay serially (identical semantics).
		for _, b := range st.pending {
			g.absorb(st, b)
		}
		clear(st.pending)
		st.pending = st.pending[:0]
		return
	}
	workers := c.Workers
	type entry struct {
		hash    uint64
		keyVals []types.Value
		args    []types.Value
		qs      queryset.Set
	}
	chunkBounds := par.Split(len(st.pending), workers)
	nchunks := len(chunkBounds) - 1
	buckets := make([][][]entry, nchunks) // [chunk][bucket] → entries
	par.Do(workers, nchunks, func(ci int) {
		bucketed := make([][]entry, workers)
		for _, b := range st.pending[chunkBounds[ci]:chunkBounds[ci+1]] {
			cfg, ok := g.Streams[b.Stream]
			if !ok {
				continue
			}
			for ti := range b.Tuples {
				t := &b.Tuples[ti]
				// nil dst: each buffered entry owns its key values.
				keyVals, h := extractKeyHash(t.Row, cfg.GroupCols, nil)
				args := make([]types.Value, len(g.Aggs))
				for i := range g.Aggs {
					if i < len(cfg.AggArgs) && cfg.AggArgs[i] != nil {
						args[i] = cfg.AggArgs[i].Eval(t.Row, nil)
					} else {
						args[i] = types.NewInt(1) // COUNT(*) marker
					}
				}
				bi := int(h % uint64(workers))
				bucketed[bi] = append(bucketed[bi], entry{hash: h, keyVals: keyVals, args: args, qs: t.QS})
			}
		}
		buckets[ci] = bucketed
	})
	locals := make([]groupTable, workers)
	par.Do(workers, workers, func(bi int) {
		m := &locals[bi]
		for ci := 0; ci < nchunks; ci++ {
			for _, e := range buckets[ci][bi] {
				ge := m.lookup(e.hash, e.keyVals)
				if ge == nil {
					ge = &groupEntry{hash: e.hash, keyVals: e.keyVals}
					m.insert(ge)
				}
				for _, qid := range e.qs.IDs() {
					for int(qid) >= len(ge.perQuery) {
						ge.perQuery = append(ge.perQuery, nil)
					}
					states := ge.perQuery[qid]
					if states == nil {
						states = make([]aggState, len(g.Aggs))
						ge.perQuery[qid] = states
					}
					for i, def := range g.Aggs {
						states[i].add(e.args[i], def)
					}
				}
			}
		}
	})
	// Buckets are hash-disjoint (a key lives in exactly one), so the local
	// tables merge into the cycle table by plain insertion, bucket order —
	// deterministic because bucket assignment and entry order are.
	for bi := range locals {
		for _, ge := range locals[bi].entries {
			st.groups.insert(ge)
		}
	}
	clear(st.pending)
	st.pending = st.pending[:0]
}

// Finish runs phase 2: per (group, query) HAVING evaluation and emission.
// When Consume buffered input for parallel execution, the partitioned
// aggregation runs first; emission itself stays on the cycle goroutine.
// Groups emit in first-arrival order (the insertion order of the unboxed
// table), making output deterministic across runs.
func (g *GroupOp) Finish(c *Cycle) {
	st := c.opState.(*groupState)
	if len(st.pending) > 0 {
		g.aggregateParallel(c, st)
	}
	for _, ge := range st.groups.entries {
		for q, states := range ge.perQuery {
			if states == nil {
				continue
			}
			qid := queryset.QueryID(q)
			row := make(types.Row, 0, len(ge.keyVals)+len(g.Aggs))
			row = append(row, ge.keyVals...)
			for i, def := range g.Aggs {
				row = append(row, states[i].result(def))
			}
			if h := st.having[qid]; h != nil && !expr.TruthyEval(h, row, nil) {
				continue
			}
			st.emitted[qid] = true
			g.single[0] = qid
			c.Emit(g.OutStream, row, queryset.FromSorted(g.single[:1]))
		}
	}
	// scalar aggregates over empty input produce one row of defaults
	for qid, isScalar := range st.scalar {
		if !isScalar || st.emitted[qid] {
			continue
		}
		row := make(types.Row, len(g.Aggs))
		empty := &aggState{}
		for i, def := range g.Aggs {
			row[i] = empty.result(def)
		}
		if h := st.having[qid]; h != nil && !expr.TruthyEval(h, row, nil) {
			continue
		}
		g.single[0] = qid
		c.Emit(g.OutStream, row, queryset.FromSorted(g.single[:1]))
	}
	st.groups.reset() // drop group state references between cycles
	c.opState = nil
}
