package operators

import (
	"shareddb/internal/expr"
	"shareddb/internal/queryset"
	"shareddb/internal/storage"
	"shareddb/internal/types"
)

// Incremental node state (the "NodeState" lifecycle): with
// Config.IncrementalState on, a stateful operator whose input is a direct
// base-table scan stops rebuilding its hash table from the scan stream
// every cycle. Instead the state becomes persistent, owned by the plan node
// across generations, and each cycle either primes it (one table scan at
// the cycle's snapshot, performed by the operator itself so RowIDs are
// known) or reuses it by applying the generation's write delta in place —
// insert/retract against the same open-addressed tables the rebuild path
// uses.
//
// The plan decides prime vs reuse per generation (activate.go): reuse
// requires that the covered queries and their parameters are unchanged
// since the state was last brought up to date AND that the delta's FromTS
// chains exactly onto the state's snapshot. Either way the plan silences
// the scan→operator edge for the covered queries, so the node's cycle sees
// no producer traffic and goes straight to Finish.
//
// Ordering contract: a primed table inserts rows in ascending RowID order —
// the same order the shared ClockScan delivers them — and delta maintenance
// preserves per-key RowID order, so probe emission (joins) and group
// first-arrival emission (group-by) are byte-identical to a serial rebuild.

// IncMode selects how the cycle brings the node state up to date.
type IncMode uint8

// Incremental cycle modes.
const (
	// IncPrime (re)builds the state from a table scan at the cycle's
	// snapshot.
	IncPrime IncMode = iota + 1
	// IncReuse applies the generation's write delta to state already
	// current as of Delta.FromTS.
	IncReuse
)

// IncPred is one covered query's bound scan predicate (nil = every row),
// re-evaluated against delta rows to route insertions and retractions.
type IncPred struct {
	QID  queryset.QueryID
	Pred expr.Expr
}

// IncCycle is the incremental-state activation attached to a CycleStart.
// Preds are sorted by QID ascending. Delta is the table's slice of the
// generation write delta (reuse mode; nil or empty = read-only generation).
type IncCycle struct {
	Mode  IncMode
	Table *storage.Table
	Preds []IncPred
	Delta *storage.TableDelta
}

// ColCycle is the columnar-aggregation activation attached to a CycleStart
// (the aggregation pushdown of the columnar data path): the group-by node
// feeds itself from the table's columnar mirror (storage.SharedScanColumnar)
// instead of consuming the scan→group stream, which the plan silences for
// the covered queries. Preds are sorted by QID ascending, one bound scan
// predicate per covered query — exactly the clients the shared scan node
// would have served. The scan emits in RowID order and the operator absorbs
// serially in that order, so the resulting aggregate state (and Finish
// emission) is byte-identical to the row path.
type ColCycle struct {
	Table *storage.Table
	Preds []IncPred
}

// evalIncPreds routes one table row to the covered queries whose predicate
// it satisfies. Preds are QID-sorted, so the result assembles pre-sorted
// (queryset.Of's copy-only fast path). Returns the set and the reusable
// scratch slice.
func evalIncPreds(preds []IncPred, row types.Row, scratch []queryset.QueryID) (queryset.Set, []queryset.QueryID) {
	scratch = scratch[:0]
	for _, p := range preds {
		if expr.TruthyEval(p.Pred, row, nil) {
			scratch = append(scratch, p.QID)
		}
	}
	if len(scratch) == 0 {
		return queryset.Set{}, scratch
	}
	return queryset.Of(scratch...), scratch
}
