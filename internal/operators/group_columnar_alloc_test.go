package operators

import (
	"testing"

	"shareddb/internal/expr"
	"shareddb/internal/queryset"
	"shareddb/internal/storage"
	"shareddb/internal/testutil"
	"shareddb/internal/types"
)

// TestGroupColumnarZeroAllocSteadyState pins the aggregation-pushdown hot
// path: once the operator's free lists, scan buffers and batch pool are
// warm, a columnar group-by cycle over 4096 rows must allocate only for
// what it emits (one output row per live (group, query)) — per-row absorb,
// per-(group, query) aggregate state and the selection bitmaps all recycle.
func TestGroupColumnarZeroAllocSteadyState(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	db, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tab, err := db.CreateTable("t", types.NewSchema(
		types.Column{Qualifier: "t", Name: "t_id", Kind: types.KindInt},
		types.Column{Qualifier: "t", Name: "t_g", Kind: types.KindInt},
		types.Column{Qualifier: "t", Name: "t_v", Kind: types.KindInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.SetPrimaryKey("t_id"); err != nil {
		t.Fatal(err)
	}
	const nRows, nGroups = 4096, 16
	ops := make([]storage.WriteOp, nRows)
	for i := 0; i < nRows; i++ {
		ops[i] = storage.WriteOp{Table: "t", Kind: storage.WInsert, Row: types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % nGroups)),
			types.NewInt(int64((i * 31) % 1024)),
		}}
	}
	results, ts := db.ApplyOps(ops)
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}

	op := &GroupOp{
		Streams: map[int]GroupStream{1: {
			GroupCols: []int{1},
			AggArgs:   []expr.Expr{nil, &expr.ColRef{Idx: 2}, &expr.ColRef{Idx: 2}},
		}},
		Aggs:      []AggDef{{Kind: AggCount}, {Kind: AggSum}, {Kind: AggMin}},
		OutStream: 2,
	}
	cmp := func(o expr.CmpOp, col int, v int64) expr.Expr {
		return &expr.Cmp{Op: o, L: &expr.ColRef{Idx: col}, R: &expr.Const{Val: types.NewInt(v)}}
	}
	col := &ColCycle{Table: tab, Preds: []IncPred{
		{QID: 1, Pred: cmp(expr.GE, 2, 0)},
		{QID: 2, Pred: cmp(expr.LT, 2, 512)},
		{QID: 3, Pred: cmp(expr.LE, 1, 7)},
		{QID: 4, Pred: cmp(expr.GE, 2, 256)},
	}}
	tasks := []Task{
		{Query: 1, Spec: GroupSpec{}},
		{Query: 2, Spec: GroupSpec{}},
		{Query: 3, Spec: GroupSpec{}},
		{Query: 4, Spec: GroupSpec{}},
	}

	pool := NewBatchPool()
	node := NewNode(0, "group", op)
	node.SetPool(pool)
	sink := &SinkOp{}
	sinkNode := NewNode(1, "sink", sink)
	sinkNode.SetPool(pool)
	edge := Connect(node, sinkNode)
	qs := queryset.Of(1, 2, 3, 4)
	edge.SetQueries(1, qs)
	var emitted int
	sink.SetHandler(1, func(_ int, tp Tuple) { emitted += tp.QS.Len() })
	sinkCycle := &Cycle{Gen: 1}
	drain := func() {
		for sinkNode.Inbox().Len() > 0 {
			m, ok := sinkNode.Inbox().Pop()
			if !ok {
				return
			}
			if m.Batch != nil {
				sink.Consume(sinkCycle, m.Batch)
				pool.Put(m.Batch)
			}
		}
	}

	var em emitter
	cycle := func() {
		em.reset(node, 1)
		c := &Cycle{Gen: 1, TS: ts, Tasks: tasks, Workers: 4, Col: col, node: node, em: &em}
		c.all = qs
		op.Start(c)
		op.Finish(c)
		c.em.flushEOS()
		drain()
	}

	// Warm up: build the columnar mirror, grow the free lists, the scan
	// bitmaps and the batch pool to this workload's steady-state shape.
	for i := 0; i < 5; i++ {
		cycle()
	}
	emitted = 0
	cycle()
	perCycle := emitted
	if perCycle == 0 || perCycle > nGroups*len(tasks) {
		t.Fatalf("fixture emits %d rows/cycle, want 1..%d", perCycle, nGroups*len(tasks))
	}

	allocs := testing.AllocsPerRun(10, cycle)
	// Budget: ~2 allocations per emitted row (the output types.Row and its
	// routing) plus a fixed per-cycle overhead for the Cycle/state plumbing.
	// The failure mode this guards is per-INPUT-row or per-(group, query)
	// allocation, which would land at >= nRows/4.
	budget := float64(2*perCycle + 48)
	if allocs > budget {
		t.Errorf("columnar group cycle allocates %.1f/cycle (budget %.0f for %d emitted rows over %d input rows) — per-row or per-state allocation crept back in",
			allocs, budget, perCycle, nRows)
	}
}
