// Package operators implements SharedDB's shared, always-on database
// operators (paper §3.3, §3.4, §4.2). Every operator follows the skeleton of
// Algorithm 1: it dequeues the pending queries of one batch generation,
// consumes the tuples produced for those queries by its input operators,
// processes them once for all subscribed queries (the data-query model), and
// pushes results to its consumers.
//
// Tuples flow in vectors (batches) "following a vector model of execution
// for better instruction cache locality" (§3.2). Because a shared operator
// can serve queries whose inputs come from different places in the global
// plan (e.g. the shared sort of Figure 2 sorts both join output for Q4 and
// bare Items tuples for Q5), batches are tagged with a stream identifier and
// operators hold per-stream configuration (schemas, key extractors).
//
// Memory discipline (README "Memory discipline"): batches and the query-id
// arenas backing their tuples' sets are pooled (BatchPool) and recycled
// along generation-drain boundaries, so the steady-state heartbeat cycle
// performs no per-tuple heap allocation on the routing path.
package operators

import (
	"shareddb/internal/queryset"
	"shareddb/internal/types"
)

// Tuple is one row in the data-query model: the row plus the set of queries
// potentially interested in it (paper §3.1, Figure 1).
type Tuple struct {
	Row types.Row
	QS  queryset.Set
}

// Batch is a vector of tuples from one stream. All tuples of a batch share
// the stream's schema. Pooled batches own the arena their tuples' query
// sets live in: tuples and sets die together when the batch is recycled.
type Batch struct {
	Stream int
	Tuples []Tuple

	arena    queryset.Arena // backs the Tuples' query sets (pooled batches)
	pooled   bool           // born from a BatchPool: eligible for recycling
	retained bool           // consumer kept references past Consume (released after Finish)
}

// reset clears the batch for reuse, dropping row references so the pooled
// buffer does not pin row memory.
func (b *Batch) reset() {
	clear(b.Tuples)
	b.Tuples = b.Tuples[:0]
	b.arena.Reset()
	b.retained = false
}

// batchSize is the target vector length.
const batchSize = 1024

// emitter accumulates tuples per (consumer edge, stream) and flushes them as
// batches, applying query-set routing: each consumer receives a tuple only
// if the tuple's query set intersects the queries the consumer serves this
// generation, and the delivered set is restricted to that intersection.
//
// Edge query sets are per generation and snapshotted at cycle start: with
// pipelined execution the coordinator installs future generations' sets
// while this node is mid-cycle, and downstream nodes may still be draining
// older generations.
//
// The emitter is reused across a node's cycles (a node runs one cycle at a
// time), and its batches come from the plan's BatchPool: the intersection
// routing a tuple to an edge is computed directly into the target batch's
// id arena, so steady-state emission allocates nothing.
type emitter struct {
	node *Node
	gen  uint64
	// edgeQueries is the cycle-start snapshot of each consumer edge's
	// active query set for this emitter's generation.
	edgeQueries []queryset.Set
	// buffered batches per consumer edge index, keyed by stream
	bufs []map[int]*Batch
}

// reset prepares the node's reusable emitter for a new cycle.
func (e *emitter) reset(n *Node, gen uint64) {
	e.node = n
	e.gen = gen
	for len(e.bufs) < len(n.Consumers) {
		e.bufs = append(e.bufs, map[int]*Batch{})
	}
	e.edgeQueries = e.edgeQueries[:0]
	for _, edge := range n.Consumers {
		e.edgeQueries = append(e.edgeQueries, edge.QueriesFor(gen))
	}
}

// emit routes one tuple to every interested consumer.
func (e *emitter) emit(stream int, row types.Row, qs queryset.Set) {
	for i, edge := range e.node.Consumers {
		if i >= len(e.edgeQueries) {
			break // edge added after cycle start: not active this cycle
		}
		eq := e.edgeQueries[i]
		if eq.Empty() {
			continue
		}
		b := e.bufs[i][stream]
		if b == nil {
			if !qs.Intersects(eq) {
				continue
			}
			b = e.node.pool.Get(stream)
			e.bufs[i][stream] = b
		}
		sub := b.arena.Intersect(qs, eq)
		if sub.Empty() {
			continue
		}
		b.Tuples = append(b.Tuples, Tuple{Row: row, QS: sub})
		if len(b.Tuples) >= batchSize {
			edge.To.inbox.Push(Message{Gen: e.gen, Edge: edge, Batch: b})
			e.bufs[i][stream] = nil
		}
	}
}

// flushEOS flushes all pending batches and sends end-of-stream on every
// *active* consumer edge (SendEndOfStream in Algorithm 1). Edges serving no
// queries this generation belong to consumers that may not be running a
// cycle; they receive nothing.
func (e *emitter) flushEOS() {
	for i, edge := range e.node.Consumers {
		if i >= len(e.edgeQueries) || e.edgeQueries[i].Empty() {
			continue
		}
		for s, b := range e.bufs[i] {
			if b != nil {
				if len(b.Tuples) > 0 {
					edge.To.inbox.Push(Message{Gen: e.gen, Edge: edge, Batch: b})
				} else {
					e.node.pool.Put(b)
				}
				delete(e.bufs[i], s)
			}
		}
		edge.To.inbox.Push(Message{Gen: e.gen, Edge: edge, EOS: true})
	}
}
