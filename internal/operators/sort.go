package operators

import (
	"sort"

	"shareddb/internal/expr"
	"shareddb/internal/par"
	"shareddb/internal/queryset"
	"shareddb/internal/types"
)

// SortOp is the shared sort / shared Top-N operator (paper §3.4, Figure 4):
// one big sort over the union of all subscribed queries' tuples, followed by
// per-query routing that preserves order. Top-N is "an extension of the sort
// operator": the shared phase sorts everything, then per-query counters cut
// each query's output after its N rows — so plain ORDER BY queries and
// LIMIT queries share the same sort.
//
// Tuples may arrive on multiple streams with different schemas; per-stream
// key extractors evaluate the (semantically identical) sort key on each.
//
// The sort buffer, the flat arena backing extracted sort keys, and the
// per-query routing scratch are owned by the operator and reused across
// cycles, so steady-state buffering allocates only on high-water growth.
type SortOp struct {
	Streams map[int]SortStream // key extraction per input stream

	// cycle state, reused across cycles (one cycle at a time per node)
	st        sortState
	keyBuf    []types.Value      // flat arena: each tuple's keys are a clipped sub-slice
	qsScratch []queryset.QueryID // Top-N routing scratch
}

// SortStream configures one input stream of a shared sort.
type SortStream struct {
	Keys      []SortKey
	OutStream int // usually the input stream id (schema unchanged)
}

// SortKey is one sort key over a stream's schema.
type SortKey struct {
	E    expr.Expr
	Desc bool
}

// SortSpec is the per-query activation: the query's row limit (Top-N), or
// <= 0 for unlimited (plain ORDER BY).
type SortSpec struct {
	Limit int
}

type sortedTuple struct {
	stream int
	t      Tuple
	keys   []types.Value
}

// sortState is per-cycle; kept on the operator (one cycle at a time per
// node).
type sortState struct {
	tuples []sortedTuple
	limits []int // dense by generation-scoped query id; <= 0 = unlimited
}

// cycle state
func (s *SortOp) state(c *Cycle) *sortState { return c.opState.(*sortState) }

// Start initializes the sort buffer and per-query limits.
func (s *SortOp) Start(c *Cycle) {
	st := &s.st
	clear(st.tuples)
	st.tuples = st.tuples[:0]
	s.keyBuf = s.keyBuf[:0]
	maxID := queryset.QueryID(0)
	for _, t := range c.Tasks {
		if t.Query > maxID {
			maxID = t.Query
		}
	}
	if cap(st.limits) < int(maxID)+1 {
		st.limits = make([]int, int(maxID)+1)
	}
	st.limits = st.limits[:int(maxID)+1]
	clear(st.limits)
	for _, t := range c.Tasks {
		spec, _ := t.Spec.(SortSpec)
		st.limits[t.Query] = spec.Limit
	}
	c.opState = st
}

// limit returns query q's row cap (<= 0 = unlimited).
func (st *sortState) limit(q queryset.QueryID) int {
	if int(q) >= len(st.limits) {
		return 0
	}
	return st.limits[q]
}

// Consume buffers tuples with their extracted sort keys (ProcessTuple of
// Algorithm 1 for a blocking operator: "append the tuple to a buffer
// structure ... the same buffer structure is used for all the queries that
// belong to the same batch"). The batch is retained: buffered tuples alias
// its rows and query sets until Finish drains them.
func (s *SortOp) Consume(c *Cycle, b *Batch) {
	cfg, ok := s.Streams[b.Stream]
	if !ok {
		return
	}
	c.Retain(b)
	st := s.state(c)
	for ti := range b.Tuples {
		t := &b.Tuples[ti]
		start := len(s.keyBuf)
		for _, k := range cfg.Keys {
			s.keyBuf = append(s.keyBuf, k.E.Eval(t.Row, nil))
		}
		keys := s.keyBuf[start:len(s.keyBuf):len(s.keyBuf)]
		st.tuples = append(st.tuples, sortedTuple{stream: b.Stream, t: *t, keys: keys})
	}
}

// Finish sorts for all queries and emits in order with per-query Top-N
// filtering.
//
// Two regimes, per the paper's f(o) vs Σf(nᵢ) analysis (§3.5): when tuples
// are shared between queries, one big sort of the union is performed (the
// shared sort of Figure 4, f(o) < Σf(nᵢ) under overlap). When every tuple
// belongs to exactly one query — typical for group-by output, where rows
// are per-(group, query) — there is nothing to share (o = n, the paper's
// worst case), so the operator sorts each query's partition separately:
// same results, Σf(nᵢ) < f(n) work. Emission order only matters within a
// query, so partition-by-partition emission is equivalent.
func (s *SortOp) Finish(c *Cycle) {
	st := s.state(c)
	// Desc flags are part of the operator's sharing signature, so every
	// stream has identical flags; use the first stream's.
	var desc []bool
	for _, cfg := range s.Streams {
		desc = make([]bool, len(cfg.Keys))
		for i, k := range cfg.Keys {
			desc[i] = k.Desc
		}
		break
	}
	less := func(a, b *sortedTuple) bool {
		for i := range a.keys {
			d := a.keys[i].Compare(b.keys[i])
			if d == 0 {
				continue
			}
			if i < len(desc) && desc[i] {
				return d > 0
			}
			return d < 0
		}
		return false
	}

	allSingleton := true
	for i := range st.tuples {
		if st.tuples[i].t.QS.Len() != 1 {
			allSingleton = false
			break
		}
	}

	if allSingleton {
		partitions := map[queryset.QueryID][]sortedTuple{}
		for _, sr := range st.tuples {
			q := sr.t.QS.IDs()[0]
			partitions[q] = append(partitions[q], sr)
		}
		if c.Workers > 1 && len(partitions) > 1 {
			// Data-parallel Finish (paper §4.2): the query partitions are
			// already disjoint, so each one sorts on its own worker; emission
			// stays on the cycle goroutine (the emitter is not concurrent).
			qids := make([]queryset.QueryID, 0, len(partitions))
			for q := range partitions {
				qids = append(qids, q)
			}
			sort.Slice(qids, func(a, b int) bool { return qids[a] < qids[b] })
			parts := make([][]sortedTuple, len(qids))
			par.Do(c.Workers, len(qids), func(i int) {
				part := partitions[qids[i]]
				sort.SliceStable(part, func(a, b int) bool { return less(&part[a], &part[b]) })
				if lim := st.limit(qids[i]); lim > 0 && len(part) > lim {
					part = part[:lim]
				}
				parts[i] = part
			})
			for _, part := range parts {
				for _, sr := range part {
					c.Emit(s.Streams[sr.stream].OutStream, sr.t.Row, sr.t.QS)
				}
			}
			s.release(st)
			c.opState = nil
			return
		}
		for q, part := range partitions {
			sort.SliceStable(part, func(a, b int) bool { return less(&part[a], &part[b]) })
			lim := st.limit(q)
			if lim > 0 && len(part) > lim {
				part = part[:lim]
			}
			for _, sr := range part {
				c.Emit(s.Streams[sr.stream].OutStream, sr.t.Row, sr.t.QS)
			}
		}
		s.release(st)
		c.opState = nil
		return
	}

	st.tuples = stableSortTuples(st.tuples, less, c.Workers)
	counts := make([]int, len(st.limits))
	remaining := 0
	unlimited := false
	// Count from the cycle's tasks, not the dense limits slice: its gap
	// entries (ids not registered at this node, incl. the unused id 0) are
	// zero and would read as "some query is unlimited", disabling the
	// every-Top-N-satisfied early exit below.
	for _, tk := range c.Tasks {
		if st.limit(tk.Query) > 0 {
			remaining++
		} else {
			unlimited = true
		}
	}
	for i := range st.tuples {
		sr := &st.tuples[i]
		qs := sr.t.QS.RetainInto(func(q queryset.QueryID) bool {
			lim := st.limit(q)
			if lim <= 0 {
				return true
			}
			if int(q) < len(counts) {
				if counts[q] >= lim {
					return false
				}
				counts[q]++
				if counts[q] == lim {
					remaining--
				}
			}
			return true
		}, s.qsScratch)
		s.qsScratch = qs.IDs()
		if !qs.Empty() {
			out := s.Streams[sr.stream].OutStream
			c.Emit(out, sr.t.Row, qs)
		}
		if !unlimited && remaining == 0 {
			break // every Top-N query satisfied
		}
	}
	s.release(st)
	c.opState = nil
}

// release drops the cycle's buffered tuple references so retained input
// batches recycle without pinned rows, keeping buffer capacity for the next
// cycle.
func (s *SortOp) release(st *sortState) {
	clear(st.tuples)
	st.tuples = st.tuples[:0]
	clear(s.keyBuf)
	s.keyBuf = s.keyBuf[:0]
}
