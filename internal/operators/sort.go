package operators

import (
	"sort"

	"shareddb/internal/expr"
	"shareddb/internal/queryset"
	"shareddb/internal/types"
)

// SortOp is the shared sort / shared Top-N operator (paper §3.4, Figure 4):
// one big sort over the union of all subscribed queries' tuples, followed by
// per-query routing that preserves order. Top-N is "an extension of the sort
// operator": the shared phase sorts everything, then per-query counters cut
// each query's output after its N rows — so plain ORDER BY queries and
// LIMIT queries share the same sort.
//
// Tuples may arrive on multiple streams with different schemas; per-stream
// key extractors evaluate the (semantically identical) sort key on each.
//
// The sort buffer, the flat arena backing extracted sort keys, and the
// per-query routing scratch are owned by the operator and reused across
// cycles, so steady-state buffering allocates only on high-water growth.
type SortOp struct {
	Streams map[int]SortStream // key extraction per input stream

	// cycle state, reused across cycles (one cycle at a time per node)
	st        sortState
	keyBuf    []types.Value      // flat arena: each tuple's keys are a clipped sub-slice
	qsScratch []queryset.QueryID // Top-N routing scratch
}

// SortStream configures one input stream of a shared sort.
type SortStream struct {
	Keys      []SortKey
	OutStream int // usually the input stream id (schema unchanged)

	// Singleton marks streams whose every tuple carries exactly one query
	// id — group-by output, which is per-(group, query) by construction.
	// When every stream is singleton and every active query has a LIMIT,
	// the sort runs in bounded Top-N heap mode (see Consume).
	Singleton bool
}

// SortKey is one sort key over a stream's schema.
type SortKey struct {
	E    expr.Expr
	Desc bool
}

// SortSpec is the per-query activation: the query's row limit (Top-N), or
// <= 0 for unlimited (plain ORDER BY).
type SortSpec struct {
	Limit int
}

type sortedTuple struct {
	stream int
	t      Tuple
	keys   []types.Value
}

// sortState is per-cycle; kept on the operator (one cycle at a time per
// node).
type sortState struct {
	tuples []sortedTuple
	limits []int  // dense by generation-scoped query id; <= 0 = unlimited
	desc   []bool // the shared key direction flags, hoisted at Start

	// Bounded Top-N heap mode (the grouped Top-N pushdown): active when
	// every input stream is Singleton and every active query carries a
	// LIMIT. Instead of buffering the whole input for one big Finish sort,
	// Consume maintains a bounded max-heap of at most LIMIT entries per
	// query, ordered by (sort keys, arrival sequence) — a strict total
	// order, so the heap retains exactly the k minima that a stable
	// sort-then-cut would, and the sort never sees more than k rows per
	// query partition.
	heapOn bool
	heaps  []topnHeap // dense by generation-scoped query id
	seq    int64      // arrival counter: the stability tiebreak
}

// heapTuple is one bounded-heap entry; keys is entry-owned (reused when the
// entry is evicted and replaced).
type heapTuple struct {
	stream int
	t      Tuple
	keys   []types.Value
	seq    int64
}

// topnHeap is one query's bounded max-heap: ents[0] is the worst retained
// tuple in (keys, seq) order; a candidate is admitted iff the heap is not
// full or the candidate beats the root.
type topnHeap struct {
	lim  int
	ents []heapTuple
}

// cycle state
func (s *SortOp) state(c *Cycle) *sortState { return c.opState.(*sortState) }

// Start initializes the sort buffer and per-query limits.
func (s *SortOp) Start(c *Cycle) {
	st := &s.st
	clear(st.tuples)
	st.tuples = st.tuples[:0]
	s.keyBuf = s.keyBuf[:0]
	maxID := queryset.QueryID(0)
	for _, t := range c.Tasks {
		if t.Query > maxID {
			maxID = t.Query
		}
	}
	if cap(st.limits) < int(maxID)+1 {
		st.limits = make([]int, int(maxID)+1)
	}
	st.limits = st.limits[:int(maxID)+1]
	clear(st.limits)
	allLimited := len(c.Tasks) > 0
	for _, t := range c.Tasks {
		spec, _ := t.Spec.(SortSpec)
		st.limits[t.Query] = spec.Limit
		if spec.Limit <= 0 {
			allLimited = false
		}
	}
	// Desc flags are part of the operator's sharing signature, so every
	// stream has identical flags; hoist the first stream's.
	st.desc = st.desc[:0]
	allSingleton := len(s.Streams) > 0
	for _, cfg := range s.Streams {
		if len(st.desc) == 0 {
			for _, k := range cfg.Keys {
				st.desc = append(st.desc, k.Desc)
			}
		}
		if !cfg.Singleton {
			allSingleton = false
		}
	}
	st.heapOn = allSingleton && allLimited
	if st.heapOn {
		if cap(st.heaps) < int(maxID)+1 {
			heaps := make([]topnHeap, int(maxID)+1)
			copy(heaps, st.heaps)
			st.heaps = heaps
		}
		st.heaps = st.heaps[:int(maxID)+1]
		for i := range st.heaps {
			st.heaps[i].lim = 0
		}
		for _, t := range c.Tasks {
			spec, _ := t.Spec.(SortSpec)
			st.heaps[t.Query].lim = spec.Limit
		}
		st.seq = 0
	}
	c.opState = st
}

// limit returns query q's row cap (<= 0 = unlimited).
func (st *sortState) limit(q queryset.QueryID) int {
	if int(q) >= len(st.limits) {
		return 0
	}
	return st.limits[q]
}

// Consume buffers tuples with their extracted sort keys (ProcessTuple of
// Algorithm 1 for a blocking operator: "append the tuple to a buffer
// structure ... the same buffer structure is used for all the queries that
// belong to the same batch"). The batch is retained: buffered tuples alias
// its rows and query sets until Finish drains them.
func (s *SortOp) Consume(c *Cycle, b *Batch) {
	cfg, ok := s.Streams[b.Stream]
	if !ok {
		return
	}
	c.Retain(b)
	st := s.state(c)
	if st.heapOn {
		s.consumeHeap(st, cfg, b)
		return
	}
	for ti := range b.Tuples {
		t := &b.Tuples[ti]
		start := len(s.keyBuf)
		for _, k := range cfg.Keys {
			s.keyBuf = append(s.keyBuf, k.E.Eval(t.Row, nil))
		}
		keys := s.keyBuf[start:len(s.keyBuf):len(s.keyBuf)]
		st.tuples = append(st.tuples, sortedTuple{stream: b.Stream, t: *t, keys: keys})
	}
}

// consumeHeap is the bounded Top-N path of Consume: each singleton tuple is
// offered to its query's max-heap and admitted only while it beats the k-th
// best seen so far. Equivalence to the buffering path: a stable ascending
// sort followed by a cut at k emits the k minima of the strict total order
// (keys, arrival seq) — stability IS the seq tiebreak — and a bounded
// max-heap over the same order retains exactly those k minima.
func (s *SortOp) consumeHeap(st *sortState, cfg SortStream, b *Batch) {
	for ti := range b.Tuples {
		t := &b.Tuples[ti]
		seq := st.seq
		st.seq++
		q := t.QS.IDs()[0]
		if int(q) >= len(st.heaps) {
			continue // not registered this cycle
		}
		h := &st.heaps[q]
		if h.lim <= 0 {
			continue
		}
		start := len(s.keyBuf)
		for _, k := range cfg.Keys {
			s.keyBuf = append(s.keyBuf, k.E.Eval(t.Row, nil))
		}
		keys := s.keyBuf[start:len(s.keyBuf):len(s.keyBuf)]
		s.keyBuf = s.keyBuf[:start] // scratch only: the entry owns a copy
		if len(h.ents) < h.lim {
			i := len(h.ents)
			h.ents = append(h.ents, heapTuple{})
			e := &h.ents[i]
			e.stream, e.t, e.seq = b.Stream, *t, seq
			e.keys = append(e.keys[:0], keys...)
			// sift up
			for i > 0 {
				p := (i - 1) / 2
				if !st.heapAfter(&h.ents[i], &h.ents[p]) {
					break
				}
				h.ents[i], h.ents[p] = h.ents[p], h.ents[i]
				i = p
			}
			continue
		}
		root := &h.ents[0]
		cand := heapTuple{keys: keys, seq: seq}
		if !st.heapAfter(root, &cand) {
			continue // candidate sorts at-or-after the worst retained: reject
		}
		// replace the root, reusing its key backing, and sift down
		root.stream, root.t, root.seq = b.Stream, *t, seq
		root.keys = append(root.keys[:0], keys...)
		i, n := 0, len(h.ents)
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < n && st.heapAfter(&h.ents[l], &h.ents[m]) {
				m = l
			}
			if r < n && st.heapAfter(&h.ents[r], &h.ents[m]) {
				m = r
			}
			if m == i {
				break
			}
			h.ents[i], h.ents[m] = h.ents[m], h.ents[i]
			i = m
		}
	}
}

// heapAfter reports whether a sorts strictly after b in the cycle's
// (keys, seq) total order — "is worse than", the max-heap's priority.
func (st *sortState) heapAfter(a, b *heapTuple) bool {
	for i := range a.keys {
		d := a.keys[i].Compare(b.keys[i])
		if d == 0 {
			continue
		}
		if i < len(st.desc) && st.desc[i] {
			return d < 0
		}
		return d > 0
	}
	return a.seq > b.seq
}

// Finish sorts for all queries and emits in order with per-query Top-N
// filtering.
//
// Two regimes, per the paper's f(o) vs Σf(nᵢ) analysis (§3.5): when tuples
// are shared between queries, one big sort of the union is performed (the
// shared sort of Figure 4, f(o) < Σf(nᵢ) under overlap). When every tuple
// belongs to exactly one query — typical for group-by output, where rows
// are per-(group, query) — there is nothing to share (o = n, the paper's
// worst case), so the operator sorts each query's partition separately:
// same results, Σf(nᵢ) < f(n) work. Emission order only matters within a
// query, so partition-by-partition emission is equivalent.
func (s *SortOp) Finish(c *Cycle) {
	st := s.state(c)
	if st.heapOn {
		s.finishHeap(c, st)
		return
	}
	desc := st.desc
	less := func(a, b *sortedTuple) bool {
		for i := range a.keys {
			d := a.keys[i].Compare(b.keys[i])
			if d == 0 {
				continue
			}
			if i < len(desc) && desc[i] {
				return d > 0
			}
			return d < 0
		}
		return false
	}

	allSingleton := true
	for i := range st.tuples {
		if st.tuples[i].t.QS.Len() != 1 {
			allSingleton = false
			break
		}
	}

	if allSingleton {
		partitions := map[queryset.QueryID][]sortedTuple{}
		for _, sr := range st.tuples {
			q := sr.t.QS.IDs()[0]
			partitions[q] = append(partitions[q], sr)
		}
		if c.Workers > 1 && len(partitions) > 1 {
			// Data-parallel Finish (paper §4.2): the query partitions are
			// already disjoint, so each one sorts on its own worker; emission
			// stays on the cycle goroutine (the emitter is not concurrent).
			qids := make([]queryset.QueryID, 0, len(partitions))
			for q := range partitions {
				qids = append(qids, q)
			}
			sort.Slice(qids, func(a, b int) bool { return qids[a] < qids[b] })
			parts := make([][]sortedTuple, len(qids))
			c.Pool.Do(c.Workers, len(qids), func(i int) {
				part := partitions[qids[i]]
				sort.SliceStable(part, func(a, b int) bool { return less(&part[a], &part[b]) })
				if lim := st.limit(qids[i]); lim > 0 && len(part) > lim {
					part = part[:lim]
				}
				parts[i] = part
			})
			for _, part := range parts {
				for _, sr := range part {
					c.Emit(s.Streams[sr.stream].OutStream, sr.t.Row, sr.t.QS)
				}
			}
			s.release(st)
			c.opState = nil
			return
		}
		for q, part := range partitions {
			sort.SliceStable(part, func(a, b int) bool { return less(&part[a], &part[b]) })
			lim := st.limit(q)
			if lim > 0 && len(part) > lim {
				part = part[:lim]
			}
			for _, sr := range part {
				c.Emit(s.Streams[sr.stream].OutStream, sr.t.Row, sr.t.QS)
			}
		}
		s.release(st)
		c.opState = nil
		return
	}

	st.tuples = stableSortTuples(st.tuples, less, c.Workers, c.Pool)
	counts := make([]int, len(st.limits))
	remaining := 0
	unlimited := false
	// Count from the cycle's tasks, not the dense limits slice: its gap
	// entries (ids not registered at this node, incl. the unused id 0) are
	// zero and would read as "some query is unlimited", disabling the
	// every-Top-N-satisfied early exit below.
	for _, tk := range c.Tasks {
		if st.limit(tk.Query) > 0 {
			remaining++
		} else {
			unlimited = true
		}
	}
	for i := range st.tuples {
		sr := &st.tuples[i]
		qs := sr.t.QS.RetainInto(func(q queryset.QueryID) bool {
			lim := st.limit(q)
			if lim <= 0 {
				return true
			}
			if int(q) < len(counts) {
				if counts[q] >= lim {
					return false
				}
				counts[q]++
				if counts[q] == lim {
					remaining--
				}
			}
			return true
		}, s.qsScratch)
		s.qsScratch = qs.IDs()
		if !qs.Empty() {
			out := s.Streams[sr.stream].OutStream
			c.Emit(out, sr.t.Row, qs)
		}
		if !unlimited && remaining == 0 {
			break // every Top-N query satisfied
		}
	}
	s.release(st)
	c.opState = nil
}

// finishHeap emits the bounded Top-N heaps, queries ascending, each heap
// sorted ascending by (keys, seq) — exactly the per-query stable-sort-and-
// cut sequence of the buffering path. Heaps hold at most LIMIT entries, so
// the final sorts are O(k log k) regardless of input size.
func (s *SortOp) finishHeap(c *Cycle, st *sortState) {
	for q := range st.heaps {
		h := &st.heaps[q]
		if h.lim <= 0 || len(h.ents) == 0 {
			continue
		}
		// (keys, seq) is a strict total order, so an unstable sort is
		// deterministic here.
		sort.Slice(h.ents, func(a, b int) bool { return st.heapAfter(&h.ents[b], &h.ents[a]) })
		for i := range h.ents {
			e := &h.ents[i]
			c.Emit(s.Streams[e.stream].OutStream, e.t.Row, e.t.QS)
		}
	}
	s.release(st)
	c.opState = nil
}

// release drops the cycle's buffered tuple references so retained input
// batches recycle without pinned rows, keeping buffer capacity for the next
// cycle.
func (s *SortOp) release(st *sortState) {
	clear(st.tuples)
	st.tuples = st.tuples[:0]
	clear(s.keyBuf)
	s.keyBuf = s.keyBuf[:0]
	for q := range st.heaps {
		h := &st.heaps[q]
		for i := range h.ents {
			e := &h.ents[i]
			e.t = Tuple{}
			clear(e.keys)
			e.keys = e.keys[:0]
		}
		h.ents = h.ents[:0]
	}
}
