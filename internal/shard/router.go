package shard

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"shareddb/internal/core"
	"shareddb/internal/expr"
	"shareddb/internal/plan"
	"shareddb/internal/sql"
	"shareddb/internal/storage"
	"shareddb/internal/types"
)

// Placement decides how each table distributes across shards.
//
// The default policy: tables with a primary key are hash-partitioned on it;
// tables without one are replicated to every shard. Replicated lists
// tables to replicate regardless (dimension tables every shard joins
// against); PartitionKeys overrides the partition key (co-partitioning a
// detail table with its parent, e.g. order lines on their order id).
//
// Placement is fixed for the life of a deployment: the loader (Stores) and
// the router must use the same policy, or rows end up on shards the router
// never looks at.
type Placement struct {
	Replicated    []string
	PartitionKeys map[string][]string
}

// tableRouting resolves one table's distribution against a shard's catalog:
// the partition-key schema indices, or replicated=true. Unknown tables
// report ok=false.
func (p Placement) tableRouting(db *storage.Database, name string) (cols []int, replicated bool, ok bool) {
	t := db.Table(name)
	if t == nil {
		return nil, false, false
	}
	for _, r := range p.Replicated {
		if r == name {
			return nil, true, true
		}
	}
	if names, override := p.PartitionKeys[name]; override {
		cols = make([]int, len(names))
		for i, n := range names {
			ci, err := t.Schema().ColIndex(n)
			if err != nil {
				// Validated at New for existing tables; unresolvable
				// overrides on later DDL fall back to the primary key.
				cols = nil
				break
			}
			cols[i] = ci
		}
		if cols != nil {
			return cols, false, true
		}
	}
	if pk := t.PrimaryKey(); pk != nil {
		return pk.Cols, false, true
	}
	return nil, true, true
}

// validate eagerly checks PartitionKeys overrides against tables that
// already exist.
func (p Placement) validate(db *storage.Database) error {
	for name, cols := range p.PartitionKeys {
		t := db.Table(name)
		if t == nil {
			continue // table may be created later
		}
		for _, c := range cols {
			if _, err := t.Schema().ColIndex(c); err != nil {
				return fmt.Errorf("shard: partition key for table %q: %w", name, err)
			}
		}
	}
	return nil
}

// Router is the scatter-gather front of a sharded deployment: it owns one
// core.Engine per shard database and implements core.Executor, so callers
// cannot tell it from a single engine. Statement classification and merge
// recipes are compiled once at Prepare; Submit routes point statements to
// the owning shard (pass-through — the shard engine's Result is returned
// untouched, no copying at the seam) and scatters everything else.
//
// With a single shard the router is a pure pass-through: statements are
// prepared unrewritten on the one engine and Submit forwards directly, so
// Shards=1 behavior is byte-identical to an unsharded engine.
type Router struct {
	dbs       []*storage.Database
	plans     []*plan.GlobalPlan
	engines   []*core.Engine
	part      storage.Partitioning
	placement Placement
	single    bool
	rr        atomic.Uint64 // round-robin cursor for RouteAny reads

	mu    sync.RWMutex
	stmts map[*plan.Statement]*routedStmt

	// wmu serializes broadcast-write fan-out: without it, two concurrent
	// writers could enqueue on shard A in one order and on shard B in the
	// other, and since each shard applies writes in its own arrival order,
	// replicated copies (and the effects of overlapping predicate writes)
	// would diverge permanently. Holding wmu across the enqueue loop makes
	// every shard see broadcast writes in one global order; point writes
	// touch a single shard and need no ordering.
	wmu sync.Mutex

	// Router-level fold state (Config.FoldQueries): identical multi-shard
	// reads fold BEFORE scatter, so a hundred identical broadcasts become
	// one per-shard activation plus a fan-out. gathers indexes the pending
	// leads by fingerprint; an entry leaves the index — closing its fold
	// window — when the FIRST shard drafts the lead into a generation (the
	// engine's dispatch hook, which fires before any shard's snapshot
	// pins; see Submit for the ordering argument). Point reads are not
	// routed here: identical point reads land on the same shard and fold
	// inside its engine.
	foldQueries bool
	gmu         sync.Mutex
	gathers     map[uint64][]*gatherEntry
	folded      uint64
}

// gatherEntry is one pending multi-shard read lead: the identity to verify
// fingerprint matches against, plus the fan-out group subscribers attach to.
type gatherEntry struct {
	sql    string
	params []types.Value
	fan    *core.Fanout
}

var _ core.Executor = (*Router)(nil)

// routedStmt is one prepared statement's routing state: the classification
// plus the per-shard registered statements.
type routedStmt struct {
	sp       *sql.ShardStatement
	perShard []*plan.Statement
}

// New builds a router over the given shard databases (one engine each).
// The databases must hold identical schemas; rows must have been loaded
// through the same placement (Stores.ApplyOps or the write path).
func New(dbs []*storage.Database, cfg core.Config, placement Placement) (*Router, error) {
	if len(dbs) == 0 {
		return nil, errors.New("shard: at least one shard database required")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := placement.validate(dbs[0]); err != nil {
		return nil, err
	}
	r := &Router{
		dbs:       dbs,
		part:      storage.Partitioning{Shards: len(dbs)},
		placement: placement,
		single:    len(dbs) == 1,
		stmts:     map[*plan.Statement]*routedStmt{},
	}
	if cfg.FoldQueries && len(dbs) > 1 {
		r.foldQueries = true
		r.gathers = map[uint64][]*gatherEntry{}
	}
	// Per-shard worker placement: by default every shard engine would
	// resolve Workers=0 to all of GOMAXPROCS and the shards would contend
	// for the same cores, so split the processor budget into disjoint
	// per-shard shares. ShardWorkers overrides the share explicitly.
	ecfg := cfg
	if cfg.ShardWorkers > 0 {
		ecfg.Workers = cfg.ShardWorkers
	} else if cfg.Workers == 0 && len(dbs) > 1 {
		ecfg.Workers = max(1, runtime.GOMAXPROCS(0)/len(dbs))
	}
	for _, db := range dbs {
		gp := plan.New(db)
		r.plans = append(r.plans, gp)
		r.engines = append(r.engines, core.New(db, gp, ecfg))
	}
	return r, nil
}

// Shards returns the shard count.
func (r *Router) Shards() int { return len(r.dbs) }

// Workers reports the per-shard intra-operator parallelism budget.
func (r *Router) Workers() int { return r.engines[0].Workers() }

// ValidateTable checks the placement overrides against a (typically newly
// created) table, so a typo'd partition-key column surfaces at DDL time
// instead of silently falling back to the primary key. The DDL path calls
// this after creating a table on every shard.
func (r *Router) ValidateTable(name string) error {
	cols, ok := r.placement.PartitionKeys[name]
	if !ok {
		return nil
	}
	t := r.dbs[0].Table(name)
	if t == nil {
		return nil
	}
	for _, c := range cols {
		if _, err := t.Schema().ColIndex(c); err != nil {
			return fmt.Errorf("shard: partition key for table %q: %w", name, err)
		}
	}
	return nil
}

// Engines exposes the per-shard engines (stats, tests).
func (r *Router) Engines() []*core.Engine { return r.engines }

// Databases exposes the per-shard storage databases.
func (r *Router) Databases() []*storage.Database { return r.dbs }

// Partitioning returns the router's hash partitioner.
func (r *Router) Partitioning() storage.Partitioning { return r.part }

// Close stops every shard engine.
func (r *Router) Close() {
	for _, e := range r.engines {
		e.Close()
	}
}

// AdmitStatement is the pre-Prepare admission peek across shards. It
// rejects only when EVERY shard's breaker rejects the statement: before
// Prepare the route is unknown, and a point or replicated-read submission
// could still land on a healthy shard (broadcast submissions to a partly
// quarantined fleet are rejected at gather time anyway). The hint is the
// smallest per-shard RetryAfter — the earliest moment anything changes.
func (r *Router) AdmitStatement(sqlText string) error {
	var worst *core.OverloadError
	for _, e := range r.engines {
		err := e.AdmitStatement(sqlText)
		if err == nil {
			return nil
		}
		var oe *core.OverloadError
		if !errors.As(err, &oe) {
			return err // engine closed etc.: no healthier shard can help
		}
		if worst == nil || oe.RetryAfter < worst.RetryAfter {
			worst = oe
		}
	}
	if worst != nil {
		return worst
	}
	return nil
}

// AdmissionStats sums the shard engines' admission counters.
func (r *Router) AdmissionStats() core.AdmissionStats {
	var out core.AdmissionStats
	for _, e := range r.engines {
		s := e.AdmissionStats()
		out.Shed += s.Shed
		out.Rejected += s.Rejected
		out.BreakerTrips += s.BreakerTrips
		out.QueueDepth += s.QueueDepth
	}
	return out
}

// Stats sums the shard engines' counters. FoldedQueries additionally
// includes reads folded at the router (before scatter); the in-flight
// gauges are sums of per-shard values.
func (r *Router) Stats() core.EngineStats {
	var out core.EngineStats
	for _, e := range r.engines {
		s := e.Stats()
		out.Generations += s.Generations
		out.QueriesRun += s.QueriesRun
		out.WritesRun += s.WritesRun
		out.FoldedQueries += s.FoldedQueries
		out.SubsumedQueries += s.SubsumedQueries
		out.SubscriptionsActive += s.SubscriptionsActive
		out.SubscriptionUpdates += s.SubscriptionUpdates
		out.InFlight += s.InFlight
		out.PeakInFlight += s.PeakInFlight
		out.Admission.Shed += s.Admission.Shed
		out.Admission.Rejected += s.Admission.Rejected
		out.Admission.BreakerTrips += s.Admission.BreakerTrips
		out.Admission.QueueDepth += s.Admission.QueueDepth
	}
	r.gmu.Lock()
	out.FoldedQueries += r.folded
	r.gmu.Unlock()
	return out
}

// Describe renders shard 0's operator DAG (all shards compile the same
// statements, so the plans are isomorphic).
func (r *Router) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- %d shards, plan of shard 0 --\n", len(r.dbs))
	b.WriteString(r.plans[0].Describe())
	return b.String()
}

// shardCatalog resolves schemas and placement against one shard's storage
// (schemas are identical across shards).
type shardCatalog struct {
	db        *storage.Database
	placement Placement
}

func (c shardCatalog) TableSchema(name string) (*types.Schema, bool) {
	t := c.db.Table(name)
	if t == nil {
		return nil, false
	}
	return t.Schema(), true
}

func (c shardCatalog) TablePlacement(name string) ([]int, bool, bool) {
	return c.placement.tableRouting(c.db, name)
}

// Prepare classifies the statement, registers the per-shard statement (the
// original, or the partial rewrite the merge needs) on every shard engine,
// and returns the canonical client handle.
func (r *Router) Prepare(sqlText string) (*plan.Statement, error) {
	if r.single {
		return r.engines[0].Prepare(sqlText)
	}
	ast, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	sp, err := sql.PlanShards(ast, shardCatalog{db: r.dbs[0], placement: r.placement})
	if err != nil {
		return nil, err
	}
	if sp.UpdatesKey {
		return nil, fmt.Errorf("shard: UPDATE of a primary-key column is not supported on a sharded deployment (rows cannot migrate between shards): %s", sqlText)
	}
	// Serialize preparation so every shard registers statements in the
	// same order (sharing signatures involving statement ids stay aligned).
	r.mu.Lock()
	defer r.mu.Unlock()
	rs := &routedStmt{sp: sp, perShard: make([]*plan.Statement, len(r.engines))}
	var execAST sql.Statement = ast
	if sp.Exec != nil {
		execAST = sp.Exec
	}
	for i, e := range r.engines {
		ps, err := e.PrepareParsed(sqlText, execAST)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		rs.perShard[i] = ps
	}
	canon := &plan.Statement{
		ID:        len(r.stmts),
		SQL:       sqlText,
		NumParams: sql.NumParams(ast),
		OutSchema: sp.OutSchema,
		SinkLimit: -1,
		Write:     sp.Write,
	}
	r.stmts[canon] = rs
	return canon, nil
}

// shardFor evaluates the statement's routing key with the activation's
// parameters and hashes it to the owning shard. The common case (few key
// columns) runs allocation-free.
func (r *Router) shardFor(keyExprs []expr.Expr, params []types.Value) int {
	var buf [4]types.Value
	keys := buf[:0]
	if len(keyExprs) > len(buf) {
		keys = make([]types.Value, 0, len(keyExprs))
	}
	for _, e := range keyExprs {
		keys = append(keys, e.Eval(nil, params))
	}
	return r.part.ShardOf(keys...)
}

func failedResult(err error) *core.Result {
	res := core.NewPendingResult()
	res.Complete(err)
	return res
}

// tryRouterFold attaches a new submission to a pending identical
// multi-shard read, returning the subscriber's result on a hit. The
// fingerprint is a prefilter — identity is verified by exact SQL text and
// bit-identical parameters, like the engine's fold index.
func (r *Router) tryRouterFold(fp uint64, sqlText string, params []types.Value) *core.Result {
	r.gmu.Lock()
	defer r.gmu.Unlock()
	for _, g := range r.gathers[fp] {
		if g.sql != sqlText || !core.IdenticalParams(g.params, params) {
			continue
		}
		res := core.NewPendingResult()
		if g.fan.Attach(res) {
			r.folded++
			return res
		}
	}
	return nil
}

// addGather opens a fold window for a new multi-shard read lead.
func (r *Router) addGather(fp uint64, g *gatherEntry) {
	r.gmu.Lock()
	r.gathers[fp] = append(r.gathers[fp], g)
	r.gmu.Unlock()
}

// dropGather closes a fold window (idempotent — per-shard dispatch hooks
// and the gather's own completion both call it).
func (r *Router) dropGather(fp uint64, g *gatherEntry) {
	r.gmu.Lock()
	list := r.gathers[fp]
	for i, x := range list {
		if x == g {
			list = append(list[:i], list[i+1:]...)
			if len(list) == 0 {
				delete(r.gathers, fp)
			} else {
				r.gathers[fp] = list
			}
			break
		}
	}
	r.gmu.Unlock()
}

// Submit routes one statement activation. Point statements pass through to
// the owning shard engine; broadcast statements scatter to every shard and
// gather through the statement's merge spec.
func (r *Router) Submit(stmt *plan.Statement, params []types.Value) *core.Result {
	if r.single {
		return r.engines[0].Submit(stmt, params)
	}
	r.mu.RLock()
	rs := r.stmts[stmt]
	r.mu.RUnlock()
	if rs == nil {
		return failedResult(errors.New("shard: statement was not prepared on this router"))
	}
	sp := rs.sp
	switch sp.Route {
	case sql.RoutePoint:
		s := r.shardFor(sp.KeyExprs, params)
		return r.engines[s].Submit(rs.perShard[s], params)
	case sql.RouteAny:
		// Replicated-only read: every shard holds the data; round-robin
		// spreads the load (this is where replicated reads scale linearly
		// with the shard count). With folding on, identical concurrent
		// reads would otherwise round-robin onto DIFFERENT shards and
		// never meet in one engine's fold index — so the router folds
		// them first, and only the lead is submitted.
		if r.foldQueries {
			fp := core.FoldFingerprint(stmt.SQL, params)
			if sub := r.tryRouterFold(fp, stmt.SQL, params); sub != nil {
				return sub
			}
			g := &gatherEntry{sql: stmt.SQL, params: params, fan: core.NewFanout()}
			r.addGather(fp, g)
			s := int(r.rr.Add(1) % uint64(len(r.engines)))
			lead := r.engines[s].SubmitHooked(rs.perShard[s], params,
				func() { r.dropGather(fp, g) })
			go func() {
				<-lead.Done()
				r.dropGather(fp, g) // rejected submissions never fire the hook
				g.fan.Complete(lead)
			}()
			return lead
		}
		s := int(r.rr.Add(1) % uint64(len(r.engines)))
		return r.engines[s].Submit(rs.perShard[s], params)
	}
	// Scatter to all shards. Writes enqueue under wmu so every shard sees
	// concurrent broadcast writes in the same arrival order — and admit
	// all-or-nothing: a broadcast write rejected by one shard but applied
	// by the rest would diverge replicated copies permanently, so every
	// shard's queue slot is reserved before any shard enqueues.
	//
	// Scatter reads fold before the scatter: a submission identical to a
	// pending gather subscribes to it instead of fanning out again. The
	// fold window must close before any shard pins the lead's snapshot,
	// or a subscriber could observe a snapshot older than a write its
	// client already saw commit. The window is closed by the engines'
	// dispatch hooks: each shard fires the hook after drafting the lead
	// into a generation but before that generation's writes apply or its
	// snapshot pins, and the hook drops the gather under gmu. An Attach
	// that wins gmu against the first-firing hook therefore happens
	// before EVERY shard's dispatch — and since each shard's write phases
	// serialize in generation order, any write completed before the
	// attach belongs to a generation ≤ the lead's on that shard, whose
	// post-write snapshot includes it. Monotonic read-your-writes holds
	// for every subscriber.
	var foldFP uint64
	var gather *gatherEntry
	if r.foldQueries && sp.Write == nil {
		foldFP = core.FoldFingerprint(stmt.SQL, params)
		if sub := r.tryRouterFold(foldFP, stmt.SQL, params); sub != nil {
			return sub
		}
		gather = &gatherEntry{sql: stmt.SQL, params: params, fan: core.NewFanout()}
		r.addGather(foldFP, gather)
	}
	subs := make([]*core.Result, len(r.engines))
	if sp.Write != nil {
		r.wmu.Lock()
		for i, e := range r.engines {
			if err := e.AdmitReserve(rs.perShard[i]); err != nil {
				for j := 0; j < i; j++ {
					r.engines[j].AdmitRelease()
				}
				r.wmu.Unlock()
				return failedResult(err)
			}
		}
		for i, e := range r.engines {
			subs[i] = e.SubmitReserved(rs.perShard[i], params)
		}
		r.wmu.Unlock()
	} else if gather != nil {
		hook := func() { r.dropGather(foldFP, gather) }
		for i, e := range r.engines {
			subs[i] = e.SubmitHooked(rs.perShard[i], params, hook)
		}
	} else {
		for i, e := range r.engines {
			subs[i] = e.Submit(rs.perShard[i], params)
		}
	}
	res := core.NewPendingResult()
	res.Schema = sp.OutSchema
	go func() {
		// Partial-admission merge for scatter reads: a shard rejecting with
		// ErrOverloaded costs nothing to retry (reads mutate no state), so
		// the gathered result is "overloaded, retry the whole statement"
		// with the largest per-shard retry hint — unless some shard failed
		// for a real (non-overload) reason, which wins.
		var firstErr error
		var overload *core.OverloadError
		shardRows := make([][]types.Row, len(subs))
		affected := 0
		for i, sub := range subs {
			err := sub.Wait()
			if err != nil {
				var oe *core.OverloadError
				if errors.As(err, &oe) {
					if overload == nil || oe.RetryAfter > overload.RetryAfter {
						overload = oe
					}
				} else if firstErr == nil {
					firstErr = err
				}
			}
			shardRows[i] = sub.Rows
			affected += sub.RowsAffected
			if sub.SnapshotTS > res.SnapshotTS {
				res.SnapshotTS = sub.SnapshotTS
			}
		}
		if firstErr == nil && overload != nil {
			firstErr = overload
		}
		// Close the fold window (idempotent; load-bearing when a shard
		// rejected the submission outright, so no dispatch hook ever
		// fired) before completing, then fan out to the subscribers.
		if gather != nil {
			r.dropGather(foldFP, gather)
		}
		if firstErr != nil {
			res.Complete(firstErr)
			if gather != nil {
				gather.fan.Complete(res)
			}
			return
		}
		switch {
		case sp.Write != nil && sp.WriteReplicated:
			// Every shard applied the same mutation to its full copy;
			// report one copy's count, not the sum.
			res.RowsAffected = subs[0].RowsAffected
		case sp.Write != nil:
			res.RowsAffected = affected
		default:
			res.Rows = MergeResults(shardRows, sp.Merge, params)
		}
		res.Complete(nil)
		if gather != nil {
			gather.fan.Complete(res)
		}
	}()
	return res
}

// Tx is the router's transaction group: one buffered storage transaction
// per shard, with each write routed as it is buffered. Commit (SubmitTx)
// submits every dirty shard transaction to its engine; snapshot-isolation
// validation runs per shard. Cross-shard commits are not atomic — a
// conflict on one shard does not roll back another shard's writes (see
// README "Sharding" for the contract).
type Tx struct {
	r     *Router
	txs   []*storage.Tx
	dirty []bool
	err   error // first routing error; surfaces at SubmitTx
}

var _ core.Tx = (*Tx)(nil)

// BeginTx opens a transaction group reading each shard at its current
// snapshot. With a single shard this is the engine's own transaction.
func (r *Router) BeginTx() core.Tx {
	if r.single {
		return r.engines[0].BeginTx()
	}
	t := &Tx{r: r, txs: make([]*storage.Tx, len(r.dbs)), dirty: make([]bool, len(r.dbs))}
	for i, db := range r.dbs {
		t.txs[i] = db.Begin()
	}
	return t
}

// shardOfRow hashes a row's partition-key columns to its owning shard.
func shardOfRow(part storage.Partitioning, cols []int, row types.Row) int {
	var buf [4]types.Value
	keys := buf[:0]
	if len(cols) > len(buf) {
		keys = make([]types.Value, 0, len(cols))
	}
	for _, c := range cols {
		keys = append(keys, row[c])
	}
	return part.ShardOf(keys...)
}

// shardOfPred resolves a bound predicate (constants substituted) to the
// owning shard, or -1 when it does not pin every partition-key column by
// equality. Matching mirrors the engine's index selection: first equality
// conjunct per column wins.
func shardOfPred(part storage.Partitioning, cols []int, pred expr.Expr) int {
	if len(cols) == 0 {
		return -1
	}
	eq := map[int]types.Value{}
	for _, c := range expr.Conjuncts(pred) {
		if col, v, ok := expr.EqualityMatch(c); ok {
			if _, dup := eq[col]; !dup {
				eq[col] = v
			}
		}
	}
	keys := make([]types.Value, len(cols))
	for i, c := range cols {
		v, ok := eq[c]
		if !ok {
			return -1
		}
		keys[i] = v
	}
	return part.ShardOf(keys...)
}

// Insert buffers an insert on the owning shard (or on every shard for
// replicated tables).
func (t *Tx) Insert(table string, row types.Row) {
	cols, replicated, ok := t.r.placement.tableRouting(t.r.dbs[0], table)
	if !ok || replicated {
		// Unknown tables surface their error at commit; replicated tables
		// insert everywhere.
		for i := range t.txs {
			t.txs[i].Insert(table, row)
			t.dirty[i] = true
		}
		return
	}
	s := shardOfRow(t.r.part, cols, row)
	t.txs[s].Insert(table, row)
	t.dirty[s] = true
}

// predShard resolves a bound predicate to the owning shard, or -1 when the
// table is replicated or the predicate does not pin the full partition key
// (broadcast).
func (t *Tx) predShard(table string, pred expr.Expr) int {
	cols, replicated, ok := t.r.placement.tableRouting(t.r.dbs[0], table)
	if !ok || replicated {
		return -1
	}
	return shardOfPred(t.r.part, cols, pred)
}

// Update buffers an update: on the owning shard when pred pins the
// partition key, else on every shard (disjoint partitions and replicated
// copies both make the union of per-shard effects equal the unsharded
// update). Assigning a partition-key column is rejected (rows cannot
// migrate between shards) — the same guard Prepare applies, surfaced at
// commit because this interface has no error return.
func (t *Tx) Update(table string, pred expr.Expr, set []storage.ColSet) {
	if cols, replicated, ok := t.r.placement.tableRouting(t.r.dbs[0], table); ok && !replicated {
		for _, sc := range set {
			for _, c := range cols {
				if sc.Col == c && t.err == nil {
					t.err = fmt.Errorf("shard: UPDATE of partition-key column of table %q is not supported on a sharded deployment (rows cannot migrate between shards)", table)
				}
			}
		}
	}
	if s := t.predShard(table, pred); s >= 0 {
		t.txs[s].Update(table, pred, set)
		t.dirty[s] = true
		return
	}
	for i := range t.txs {
		t.txs[i].Update(table, pred, set)
		t.dirty[i] = true
	}
}

// Delete buffers a delete, routed like Update.
func (t *Tx) Delete(table string, pred expr.Expr) {
	if s := t.predShard(table, pred); s >= 0 {
		t.txs[s].Delete(table, pred)
		t.dirty[s] = true
		return
	}
	for i := range t.txs {
		t.txs[i].Delete(table, pred)
		t.dirty[i] = true
	}
}

// Rollback abandons every shard transaction.
func (t *Tx) Rollback() {
	for _, tx := range t.txs {
		tx.Rollback()
	}
}

// SubmitTx submits the transaction group: every dirty shard transaction
// commits through its shard engine's next generation. The first error wins
// (commits on other shards are not rolled back).
func (r *Router) SubmitTx(tx core.Tx) *core.Result {
	if r.single {
		return r.engines[0].SubmitTx(tx)
	}
	t, ok := tx.(*Tx)
	if !ok || t.r != r {
		return failedResult(errors.New("shard: SubmitTx requires a transaction from this router's BeginTx"))
	}
	if t.err != nil {
		t.Rollback()
		return failedResult(t.err)
	}
	// Reserve a queue slot on every dirty shard before any shard enqueues:
	// a commit rejected for overload on one shard must reject everywhere,
	// or the transaction group would apply on a subset of its shards.
	var subs []*core.Result
	r.wmu.Lock()
	var reserved []int
	for i, dirty := range t.dirty {
		if dirty {
			if err := r.engines[i].AdmitReserve(nil); err != nil {
				for _, j := range reserved {
					r.engines[j].AdmitRelease()
				}
				r.wmu.Unlock()
				t.Rollback()
				return failedResult(err)
			}
			reserved = append(reserved, i)
		}
	}
	for i, dirty := range t.dirty {
		if dirty {
			subs = append(subs, r.engines[i].SubmitTxReserved(t.txs[i]))
		}
	}
	r.wmu.Unlock()
	res := core.NewPendingResult()
	if len(subs) == 0 {
		res.Complete(nil)
		return res
	}
	go func() {
		var firstErr error
		for _, sub := range subs {
			if err := sub.Wait(); err != nil && firstErr == nil {
				firstErr = err
			}
			if sub.SnapshotTS > res.SnapshotTS {
				res.SnapshotTS = sub.SnapshotTS
			}
		}
		res.Complete(firstErr)
	}()
	return res
}

// Stores is the set of per-shard storage databases plus the deployment's
// placement, exposing the bulk-load path: ApplyOps routes every op to its
// owning partition (inserts by partition-key hash, predicate writes to the
// pinned shard or all shards, replicated tables to every shard) while
// preserving arrival order per shard. It implements storage.OpApplier so
// loaders written against a single database (the TPC-W generator) fill a
// sharded deployment unchanged.
type Stores struct {
	DBs    []*storage.Database
	Policy Placement
}

var _ storage.OpApplier = Stores{}

// ApplyOps routes and applies a batch of mutations, combining per-op
// results (partitioned broadcast ops sum their per-shard RowsAffected;
// replicated ops report one copy's count).
func (s Stores) ApplyOps(ops []storage.WriteOp) ([]storage.OpResult, uint64) {
	if len(s.DBs) == 1 {
		return s.DBs[0].ApplyOps(ops)
	}
	part := storage.Partitioning{Shards: len(s.DBs)}
	type routed struct {
		opIdx int
		op    storage.WriteOp
	}
	buckets := make([][]routed, len(s.DBs))
	replicatedOp := make([]bool, len(ops))
	route := func(i int, op storage.WriteOp, shard int) {
		buckets[shard] = append(buckets[shard], routed{opIdx: i, op: op})
	}
	broadcast := func(i int, op storage.WriteOp) {
		for sh := range s.DBs {
			route(i, op, sh)
		}
	}
	// Placement resolution memoized per batch: bulk-load chunks are
	// typically single-table, so one resolution serves thousands of ops.
	type tableRoute struct {
		cols       []int
		replicated bool
		ok         bool
	}
	routes := map[string]tableRoute{}
	for i, op := range ops {
		tr, seen := routes[op.Table]
		if !seen {
			tr.cols, tr.replicated, tr.ok = s.Policy.tableRouting(s.DBs[0], op.Table)
			routes[op.Table] = tr
		}
		cols, replicated, ok := tr.cols, tr.replicated, tr.ok
		switch {
		case !ok:
			// Unknown table: let one shard produce the storage error.
			route(i, op, 0)
		case replicated || len(cols) == 0:
			replicatedOp[i] = true
			broadcast(i, op)
		case op.Kind == storage.WInsert:
			route(i, op, shardOfRow(part, cols, op.Row))
		default:
			if sh := shardOfPred(part, cols, op.Pred); sh >= 0 {
				route(i, op, sh)
			} else {
				broadcast(i, op)
			}
		}
	}
	results := make([]storage.OpResult, len(ops))
	counted := make([]bool, len(ops))
	var maxTS uint64
	for sh, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		shardOps := make([]storage.WriteOp, len(bucket))
		for j, ro := range bucket {
			shardOps[j] = ro.op
		}
		shardResults, ts := s.DBs[sh].ApplyOps(shardOps)
		if ts > maxTS {
			maxTS = ts
		}
		for j, ro := range bucket {
			res := shardResults[j]
			if res.Err != nil && results[ro.opIdx].Err == nil {
				results[ro.opIdx].Err = res.Err
			}
			if replicatedOp[ro.opIdx] {
				// every copy applies the same mutation; count it once
				if !counted[ro.opIdx] {
					results[ro.opIdx].RowsAffected = res.RowsAffected
					counted[ro.opIdx] = true
				}
			} else {
				results[ro.opIdx].RowsAffected += res.RowsAffected
			}
		}
	}
	return results, maxTS
}
