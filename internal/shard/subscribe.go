package shard

import (
	"errors"
	"fmt"

	"shareddb/internal/core"
	"shareddb/internal/plan"
	"shareddb/internal/sql"
	"shareddb/internal/types"
)

// Subscribe registers a standing query on a sharded deployment. Point
// statements subscribe on the owning shard and replicated-only reads on one
// round-robin shard — both pass the shard engine's subscription through
// untouched. Scatter statements subscribe on every shard and merge the
// per-shard feeds: one initial full result (per-shard snapshots
// concatenated in shard order), then each shard's generation deltas
// forwarded in the order the shards produce them, stamped with a router
// sequence number as the generation. Closing the returned subscription
// detaches every per-shard feed.
func (r *Router) Subscribe(stmt *plan.Statement, params []types.Value) (*core.Subscription, error) {
	if r.single {
		return r.engines[0].Subscribe(stmt, params)
	}
	r.mu.RLock()
	rs := r.stmts[stmt]
	r.mu.RUnlock()
	if rs == nil {
		return nil, errors.New("shard: statement was not prepared on this router")
	}
	sp := rs.sp
	if sp.Write != nil {
		return nil, errors.New("shard: Subscribe requires a read statement")
	}
	switch sp.Route {
	case sql.RoutePoint:
		s := r.shardFor(sp.KeyExprs, params)
		return r.engines[s].Subscribe(rs.perShard[s], params)
	case sql.RouteAny:
		s := int(r.rr.Add(1) % uint64(len(r.engines)))
		return r.engines[s].Subscribe(rs.perShard[s], params)
	}

	// Scatter: per-shard deltas compose into deltas of the merged result
	// only for a plain concatenation — ordered merges, grouped merges,
	// cross-shard DISTINCT and LIMIT re-cuts all recombine rows, so a
	// one-shard change can move rows another shard contributed.
	if sp.Merge == nil || sp.Merge.Kind != sql.MergeConcat || sp.Merge.Distinct || sp.Merge.Limit >= 0 {
		return nil, fmt.Errorf("shard: subscription requires a concat-mergeable statement (no cross-shard ORDER BY, GROUP BY, DISTINCT or LIMIT): %s", stmt.SQL)
	}

	shardSubs := make([]*core.Subscription, len(r.engines))
	for i, e := range r.engines {
		ss, err := e.Subscribe(rs.perShard[i], params)
		if err != nil {
			for j := 0; j < i; j++ {
				shardSubs[j].Close()
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		shardSubs[i] = ss
	}
	out := core.NewProxySubscription(stmt, params, 0)
	go r.mergeFeeds(out, shardSubs)
	return out, nil
}

// shardUpd is one per-shard delivery tagged with its source.
type shardUpd struct {
	shard int
	u     core.SubscriptionUpdate
	ok    bool // false: the shard feed ended (engine shut down)
}

// mergeFeeds pumps every shard subscription into the merged client
// subscription. It maintains each shard's current result (applying deltas)
// so it can synthesize full resyncs — for the initial delivery, after the
// client lags, and after a shard-side resync.
func (r *Router) mergeFeeds(out *core.Subscription, shardSubs []*core.Subscription) {
	defer func() {
		for _, ss := range shardSubs {
			ss.Close()
		}
		out.Close()
	}()

	agg := make(chan shardUpd)
	for i, ss := range shardSubs {
		go func(i int, ss *core.Subscription) {
			for u := range ss.Updates() {
				select {
				case agg <- shardUpd{shard: i, u: u, ok: true}:
				case <-out.Done():
					return
				}
			}
			select {
			case agg <- shardUpd{shard: i}:
			case <-out.Done():
			}
		}(i, ss)
	}

	state := make([][]types.Row, len(shardSubs))
	pending := len(shardSubs) // shards whose initial full result is outstanding
	got := make([]bool, len(shardSubs))
	delivered := false
	var seq uint64
	for {
		select {
		case <-out.Done():
			return
		case su := <-agg:
			if !su.ok {
				return
			}
			u := su.u
			if u.Full {
				state[su.shard] = u.Rows
			} else {
				state[su.shard] = applyDelta(state[su.shard], u.Added, u.Removed)
			}
			if !got[su.shard] {
				got[su.shard] = true
				pending--
			}
			if pending > 0 {
				continue // merged initial result needs every shard's snapshot
			}
			seq++
			if !delivered || u.Full || out.Lagged() {
				var rows []types.Row
				for _, sr := range state {
					rows = append(rows, sr...)
				}
				if out.Push(core.SubscriptionUpdate{Gen: seq, SnapshotTS: u.SnapshotTS, Full: true, Rows: rows}) {
					delivered = true
				}
				continue
			}
			out.Push(core.SubscriptionUpdate{Gen: seq, SnapshotTS: u.SnapshotTS, Added: u.Added, Removed: u.Removed})
		}
	}
}

// applyDelta updates one shard's tracked result by its delivered delta:
// removed rows leave by multiset (first occurrence wins), added rows append.
func applyDelta(rows []types.Row, added, removed []types.Row) []types.Row {
	if len(removed) > 0 {
		rm := make(map[string]int, len(removed))
		for _, row := range removed {
			rm[types.EncodeKey(row...)]++
		}
		kept := make([]types.Row, 0, len(rows))
		for _, row := range rows {
			k := types.EncodeKey(row...)
			if rm[k] > 0 {
				rm[k]--
				continue
			}
			kept = append(kept, row)
		}
		rows = kept
	}
	return append(rows, added...)
}
