package shard

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"shareddb/internal/baseline"
	"shareddb/internal/core"
	"shareddb/internal/expr"
	"shareddb/internal/storage"
	"shareddb/internal/testutil"
	"shareddb/internal/types"
)

// shardCounts returns the shard counts the differential tests run at,
// overridable via SHAREDDB_TEST_SHARDS (comma-separated), mirroring the CI
// matrix.
func shardCounts(t testing.TB) []int {
	env := os.Getenv("SHAREDDB_TEST_SHARDS")
	if env == "" {
		return []int{1, 3}
	}
	var out []int
	for _, part := range strings.Split(env, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			t.Fatalf("bad SHAREDDB_TEST_SHARDS entry %q", part)
		}
		out = append(out, n)
	}
	return out
}

// testColumnar reports whether the shard suites should run the columnar
// shared scan (SHAREDDB_TEST_COLUMNAR=1), the second CI matrix axis.
func testColumnar() bool {
	return os.Getenv("SHAREDDB_TEST_COLUMNAR") == "1"
}

// mkSchema creates the miniature bookstore schema used across the shard
// tests (the same shape as the core engine's test fixture).
func mkSchema(t testing.TB, db *storage.Database) {
	t.Helper()
	mk := func(name string, cols ...types.Column) *storage.Table {
		tab, err := db.CreateTable(name, types.NewSchema(cols...))
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	col := func(q, n string, k types.Kind) types.Column {
		return types.Column{Qualifier: q, Name: n, Kind: k}
	}
	item := mk("item",
		col("item", "i_id", types.KindInt),
		col("item", "i_title", types.KindString),
		col("item", "i_a_id", types.KindInt),
		col("item", "i_subject", types.KindString),
		col("item", "i_price", types.KindFloat),
	)
	item.SetPrimaryKey("i_id")
	item.AddIndex("item_subject", false, "i_subject")
	author := mk("author",
		col("author", "a_id", types.KindInt),
		col("author", "a_lname", types.KindString),
	)
	author.SetPrimaryKey("a_id")
	orders := mk("orders",
		col("orders", "o_id", types.KindInt),
		col("orders", "o_c_id", types.KindInt),
		col("orders", "o_total", types.KindFloat),
	)
	orders.SetPrimaryKey("o_id")
	ol := mk("order_line",
		col("order_line", "ol_id", types.KindInt),
		col("order_line", "ol_o_id", types.KindInt),
		col("order_line", "ol_i_id", types.KindInt),
		col("order_line", "ol_qty", types.KindInt),
	)
	ol.SetPrimaryKey("ol_id")
	ol.AddIndex("ol_o", false, "ol_o_id")
}

var fixtureSubjects = []string{"ARTS", "SCIENCE", "HISTORY", "COOKING"}

// fixturePlacement: item and orders partition on their primary keys,
// order_line co-partitions with item on ol_i_id (so the order_line ⋈ item
// join is shard-local), and author replicates (so item ⋈ author joins work
// on every shard).
var fixturePlacement = Placement{
	Replicated:    []string{"author"},
	PartitionKeys: map[string][]string{"order_line": {"ol_i_id"}},
}

// fixtureOps builds the deterministic row population, including NULL
// prices, so the same ops load the sharded stores and the oracle.
func fixtureOps() []storage.WriteOp {
	var ops []storage.WriteOp
	ins := func(table string, vals ...types.Value) {
		ops = append(ops, storage.WriteOp{Table: table, Kind: storage.WInsert, Row: vals})
	}
	for a := int64(0); a < 30; a++ {
		ins("author", types.NewInt(a), types.NewString(fmt.Sprintf("Lname%02d", a%11)))
	}
	for i := int64(0); i < 120; i++ {
		price := types.NewFloat(float64((i*37)%9000) / 100)
		if i%9 == 7 {
			price = types.Null // NULL prices exercise NULL partial aggregates
		}
		ins("item", types.NewInt(i),
			types.NewString(fmt.Sprintf("Title %02d vol %d", i%10, i)),
			types.NewInt(i%30),
			types.NewString(fixtureSubjects[i%int64(len(fixtureSubjects))]),
			price)
	}
	for o := int64(0); o < 60; o++ {
		ins("orders", types.NewInt(o), types.NewInt(o%12), types.NewFloat(float64(o)*3.5))
	}
	for l := int64(0); l < 200; l++ {
		ins("order_line", types.NewInt(l), types.NewInt(l%60), types.NewInt((l*13)%120), types.NewInt(1+l%5))
	}
	return ops
}

// newRouterEnv builds an n-shard router over freshly loaded fixture data.
func newRouterEnv(t testing.TB, n int, cfg core.Config) *Router {
	t.Helper()
	cfg.ColumnarScan = cfg.ColumnarScan || testColumnar()
	dbs := make([]*storage.Database, n)
	for i := range dbs {
		db, err := storage.Open(storage.Options{Shard: storage.ShardInfo{Index: i, Count: n}})
		if err != nil {
			t.Fatal(err)
		}
		mkSchema(t, db)
		dbs[i] = db
	}
	results, _ := Stores{DBs: dbs, Policy: fixturePlacement}.ApplyOps(fixtureOps())
	for _, res := range results {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	r, err := New(dbs, cfg, fixturePlacement)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

// newOracle builds the query-at-a-time baseline over an unsharded copy of
// the fixture.
func newOracle(t testing.TB) *baseline.Engine {
	t.Helper()
	db, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mkSchema(t, db)
	results, _ := db.ApplyOps(fixtureOps())
	for _, res := range results {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	return baseline.New(db, baseline.SystemXLike)
}

// TestStoresPartitioning: the bulk loader puts every partitioned row on
// exactly one shard (the one its partition key hashes to), partitions are
// disjoint with the full population as their union, and replicated tables
// hold a full copy on every shard.
func TestStoresPartitioning(t *testing.T) {
	r := newRouterEnv(t, 3, core.Config{Workers: 1})
	total := 0
	nonEmpty := 0
	for _, db := range r.Databases() {
		n := db.Table("item").CountVisible(db.SnapshotTS())
		total += n
		if n > 0 {
			nonEmpty++
		}
	}
	if total != 120 {
		t.Fatalf("item rows across shards = %d, want 120", total)
	}
	if nonEmpty < 2 {
		t.Fatalf("only %d shards hold item rows; hash partitioning looks degenerate", nonEmpty)
	}
	part := r.Partitioning()
	for si, db := range r.Databases() {
		// item partitions on its primary key…
		db.Table("item").ScanVisible(db.SnapshotTS(), func(_ storage.RowID, row types.Row) bool {
			if own := part.ShardOf(row[0]); own != si {
				t.Fatalf("item pk=%v lives on shard %d, owner is %d", row[0], si, own)
			}
			return true
		})
		// …order_line co-partitions with item on ol_i_id (column 2)…
		db.Table("order_line").ScanVisible(db.SnapshotTS(), func(_ storage.RowID, row types.Row) bool {
			if own := part.ShardOf(row[2]); own != si {
				t.Fatalf("order_line ol_i_id=%v lives on shard %d, owner is %d", row[2], si, own)
			}
			return true
		})
		// …and author is fully replicated.
		if n := db.Table("author").CountVisible(db.SnapshotTS()); n != 30 {
			t.Fatalf("shard %d holds %d authors, want the full replicated 30", si, n)
		}
	}
}

// TestPointRouting: a full-PK read runs on exactly one shard (the others'
// engines see no queries).
func TestPointRouting(t *testing.T) {
	r := newRouterEnv(t, 3, core.Config{Workers: 1})
	stmt, err := r.Prepare("SELECT i_title FROM item WHERE i_id = ?")
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(0); id < 20; id++ {
		res := r.Submit(stmt, []types.Value{types.NewInt(id)})
		if err := res.Wait(); err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("point read of i_id=%d returned %d rows", id, len(res.Rows))
		}
	}
	var queries uint64
	perShard := make([]uint64, 3)
	for i, e := range r.Engines() {
		q := e.Stats().QueriesRun
		perShard[i] = q
		queries += q
	}
	if queries != 20 {
		t.Fatalf("total queries across shards = %d, want 20 (each point read on exactly one shard), per-shard %v", queries, perShard)
	}
}

// TestPointWriteRouting: partition-key writes land on the owning shard
// only, and the row is findable afterwards (insert→update→read round trip
// through the hash router).
func TestPointWriteRouting(t *testing.T) {
	r := newRouterEnv(t, 3, core.Config{Workers: 1})
	ins, err := r.Prepare("INSERT INTO orders VALUES (?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := r.Prepare("SELECT o_total FROM orders WHERE o_id = ?")
	if err != nil {
		t.Fatal(err)
	}
	upd, err := r.Prepare("UPDATE orders SET o_total = ? WHERE o_id = ?")
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(100); id < 110; id++ {
		res := r.Submit(ins, []types.Value{types.NewInt(id), types.NewInt(id % 5), types.NewFloat(1)})
		if err := res.Wait(); err != nil {
			t.Fatal(err)
		}
		if res.RowsAffected != 1 {
			t.Fatalf("insert affected %d rows", res.RowsAffected)
		}
		wres := r.Submit(upd, []types.Value{types.NewFloat(float64(id)), types.NewInt(id)})
		if err := wres.Wait(); err != nil {
			t.Fatal(err)
		}
		if wres.RowsAffected != 1 {
			t.Fatalf("update affected %d rows, want 1", wres.RowsAffected)
		}
		rres := r.Submit(sel, []types.Value{types.NewInt(id)})
		if err := rres.Wait(); err != nil {
			t.Fatal(err)
		}
		if len(rres.Rows) != 1 || rres.Rows[0][0].AsFloat() != float64(id) {
			t.Fatalf("read-back of o_id=%d: %v", id, rres.Rows)
		}
	}
}

// TestReplicatedTable: writes to a replicated table apply on every shard
// (reported once), and reads over replicated tables answer from any single
// shard.
func TestReplicatedTable(t *testing.T) {
	r := newRouterEnv(t, 3, core.Config{Workers: 1})
	ins, err := r.Prepare("INSERT INTO author VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	res := r.Submit(ins, []types.Value{types.NewInt(900), types.NewString("Repl")})
	if err := res.Wait(); err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 {
		t.Fatalf("replicated insert reported %d rows, want 1 (one logical row)", res.RowsAffected)
	}
	for si, db := range r.Databases() {
		found := false
		db.Table("author").ScanVisible(db.SnapshotTS(), func(_ storage.RowID, row types.Row) bool {
			if row[0].AsInt() == 900 {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("shard %d is missing the replicated insert", si)
		}
	}
	// Replicated-only read: generations spread across shards (round-robin),
	// every one answers correctly.
	sel, err := r.Prepare("SELECT a_lname FROM author WHERE a_id = ?")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		rres := r.Submit(sel, []types.Value{types.NewInt(900)})
		if err := rres.Wait(); err != nil {
			t.Fatal(err)
		}
		if len(rres.Rows) != 1 || rres.Rows[0][0].AsString() != "Repl" {
			t.Fatalf("replicated read %d: %v", i, rres.Rows)
		}
	}
	var shardsServing int
	for _, e := range r.Engines() {
		if q := e.Stats().QueriesRun; q > 0 {
			shardsServing++
		}
	}
	if shardsServing < 2 {
		t.Fatalf("replicated reads all served by %d shard(s); round-robin not spreading", shardsServing)
	}
}

// TestNonColocatedJoinRejected: joining two partitioned tables on
// non-partition keys cannot be answered shard-locally and must fail at
// prepare with a placement hint.
func TestNonColocatedJoinRejected(t *testing.T) {
	r := newRouterEnv(t, 2, core.Config{Workers: 1})
	// orders partitions on o_id, order_line on ol_i_id — joining them on
	// ol_o_id = o_id is not co-located.
	_, err := r.Prepare("SELECT o_id, ol_qty FROM orders, order_line WHERE ol_o_id = o_id")
	if err == nil {
		t.Fatal("non-co-located join prepared without error")
	}
	if !strings.Contains(err.Error(), "partition") {
		t.Fatalf("error should hint at placement: %v", err)
	}
	// The co-partitioned join (order_line ⋈ item on the partition keys)
	// must keep working.
	if _, err := r.Prepare("SELECT i_title, ol_qty FROM order_line, item WHERE ol_i_id = i_id"); err != nil {
		t.Fatalf("co-partitioned join rejected: %v", err)
	}
}

// TestBroadcastWriteSumsRowsAffected: a predicate update touches matching
// rows on every shard and reports the global count.
func TestBroadcastWriteSumsRowsAffected(t *testing.T) {
	r := newRouterEnv(t, 3, core.Config{Workers: 1})
	upd, err := r.Prepare("UPDATE item SET i_price = ? WHERE i_subject = ?")
	if err != nil {
		t.Fatal(err)
	}
	res := r.Submit(upd, []types.Value{types.NewFloat(1.0), types.NewString("ARTS")})
	if err := res.Wait(); err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 30 { // 120 items / 4 subjects
		t.Fatalf("broadcast update affected %d rows, want 30", res.RowsAffected)
	}
}

// TestPrimaryKeyUpdateRejected: rows cannot migrate between shards, so an
// UPDATE assigning a primary-key column fails at prepare on a sharded
// deployment.
func TestPrimaryKeyUpdateRejected(t *testing.T) {
	r := newRouterEnv(t, 2, core.Config{Workers: 1})
	if _, err := r.Prepare("UPDATE item SET i_id = ? WHERE i_id = ?"); err == nil {
		t.Fatal("preparing a primary-key UPDATE on 2 shards succeeded, want error")
	}
	single := newRouterEnv(t, 1, core.Config{Workers: 1})
	if _, err := single.Prepare("UPDATE item SET i_id = ? WHERE i_id = ?"); err != nil {
		t.Fatalf("single-shard router must keep accepting PK updates: %v", err)
	}
	// The transaction path must apply the same guard (it bypasses
	// Prepare): a buffered partition-key update fails at commit instead of
	// silently stranding the row on its old shard.
	tx := r.BeginTx().(*Tx)
	tx.Update("item",
		&expr.Cmp{Op: expr.EQ, L: &expr.ColRef{Idx: 0}, R: &expr.Const{Val: types.NewInt(7)}},
		[]storage.ColSet{{Col: 0, Val: &expr.Const{Val: types.NewInt(999)}}})
	if err := r.SubmitTx(tx).Wait(); err == nil {
		t.Fatal("tx partition-key update committed, want rejection")
	}
}

// TestRouterTx: transactions route buffered writes to owning shards and
// commit through the shard engines.
func TestRouterTx(t *testing.T) {
	r := newRouterEnv(t, 3, core.Config{Workers: 1})
	tx := r.BeginTx()
	tx.Insert("author", types.Row{types.NewInt(500), types.NewString("tx")})
	tx.Insert("author", types.Row{types.NewInt(501), types.NewString("tx")})
	if err := r.SubmitTx(tx).Wait(); err != nil {
		t.Fatal(err)
	}
	sel, err := r.Prepare("SELECT a_id FROM author WHERE a_lname = ?")
	if err != nil {
		t.Fatal(err)
	}
	res := r.Submit(sel, []types.Value{types.NewString("tx")})
	if err := res.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("tx inserts visible: %d rows, want 2", len(res.Rows))
	}
}

// TestShardForZeroAlloc pins the router seam's hot path: computing the
// owning shard of a point statement allocates nothing.
func TestShardForZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	r := newRouterEnv(t, 3, core.Config{Workers: 1})
	stmt, err := r.Prepare("SELECT i_title FROM item WHERE i_id = ?")
	if err != nil {
		t.Fatal(err)
	}
	r.mu.RLock()
	rs := r.stmts[stmt]
	r.mu.RUnlock()
	params := []types.Value{types.NewInt(42)}
	allocs := testing.AllocsPerRun(200, func() {
		if s := r.shardFor(rs.sp.KeyExprs, params); s < 0 || s > 2 {
			t.Fatal("bad shard")
		}
	})
	if allocs != 0 {
		t.Fatalf("shardFor allocates %.1f per routed statement, want 0", allocs)
	}
}

// TestKeyHashCoercion: routing is coercion-consistent — an INT key and the
// equal integral FLOAT hash to the same shard.
func TestKeyHashCoercion(t *testing.T) {
	p := storage.Partitioning{Shards: 5}
	for i := int64(0); i < 200; i++ {
		a := p.ShardOf(types.NewInt(i))
		b := p.ShardOf(types.NewFloat(float64(i)))
		if a != b {
			t.Fatalf("INT %d routes to %d, FLOAT to %d", i, a, b)
		}
	}
}
