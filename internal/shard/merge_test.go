package shard

import (
	"testing"

	"shareddb/internal/expr"
	"shareddb/internal/sql"
	"shareddb/internal/types"
)

func iv(v int64) types.Value   { return types.NewInt(v) }
func fv(v float64) types.Value { return types.NewFloat(v) }
func sv(v string) types.Value  { return types.NewString(v) }

func rowsEqual(a, b []types.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j].Compare(b[i][j]) != 0 ||
				(a[i][j].IsNull() != b[i][j].IsNull()) {
				return false
			}
		}
	}
	return true
}

// TestMergeOrdered exercises the k-way merge independent of the router:
// interleaving, cross-shard ties (earlier shard wins), DESC keys, LIMIT
// re-cut before stripping appended key columns, and DISTINCT after.
func TestMergeOrdered(t *testing.T) {
	mk := func(vals ...int64) []types.Row {
		out := make([]types.Row, len(vals))
		for i, v := range vals {
			out[i] = types.Row{sv("r"), iv(v)} // payload + appended sort key
		}
		return out
	}
	cases := []struct {
		name   string
		shards [][]types.Row
		spec   sql.MergeSpec
		want   [][2]interface{} // (payload, key) pairs expected pre-strip order
		n      int              // expected row count after merge
		strip  bool
	}{
		{
			name:   "interleave two shards ascending",
			shards: [][]types.Row{mk(1, 4, 9), mk(2, 3, 10)},
			spec:   sql.MergeSpec{Kind: sql.MergeOrdered, Limit: -1, SortCols: []int{1}, SortDesc: []bool{false}},
			n:      6,
		},
		{
			name:   "descending",
			shards: [][]types.Row{mk(9, 4, 1), mk(10, 3, 2)},
			spec:   sql.MergeSpec{Kind: sql.MergeOrdered, Limit: -1, SortCols: []int{1}, SortDesc: []bool{true}},
			n:      6,
		},
		{
			name:   "limit recut",
			shards: [][]types.Row{mk(1, 4), mk(2, 3)},
			spec:   sql.MergeSpec{Kind: sql.MergeOrdered, Limit: 3, SortCols: []int{1}, SortDesc: []bool{false}},
			n:      3,
		},
		{
			name:   "empty shard",
			shards: [][]types.Row{mk(), mk(5, 6), mk(1)},
			spec:   sql.MergeSpec{Kind: sql.MergeOrdered, Limit: -1, SortCols: []int{1}, SortDesc: []bool{false}},
			n:      3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := MergeResults(tc.shards, &tc.spec, nil)
			if len(got) != tc.n {
				t.Fatalf("got %d rows, want %d", len(got), tc.n)
			}
			for i := 1; i < len(got); i++ {
				d := got[i-1][1].Compare(got[i][1])
				if tc.spec.SortDesc[0] {
					d = -d
				}
				if d > 0 {
					t.Fatalf("row %d out of order: %v after %v", i, got[i], got[i-1])
				}
			}
		})
	}
}

// TestMergeOrderedTies pins the deterministic tie-break: equal keys keep
// shard order.
func TestMergeOrderedTies(t *testing.T) {
	shards := [][]types.Row{
		{{sv("s0a"), iv(5)}, {sv("s0b"), iv(7)}},
		{{sv("s1a"), iv(5)}, {sv("s1b"), iv(7)}},
	}
	spec := &sql.MergeSpec{Kind: sql.MergeOrdered, Limit: -1, SortCols: []int{1}, SortDesc: []bool{false}}
	got := MergeResults(shards, spec, nil)
	want := []string{"s0a", "s1a", "s0b", "s1b"}
	for i, w := range want {
		if got[i][0].AsString() != w {
			t.Fatalf("tie order: got %v at %d, want %s", got[i][0], i, w)
		}
	}
}

// TestMergeOrderedStripDistinct: the LIMIT cut happens on the extended
// rows, then appended key columns strip, then DISTINCT dedups — matching
// the single-engine Sort→Limit→Project→Distinct pipeline.
func TestMergeOrderedStripDistinct(t *testing.T) {
	shards := [][]types.Row{
		{{sv("a"), iv(1)}, {sv("a"), iv(2)}},
		{{sv("b"), iv(3)}},
	}
	spec := &sql.MergeSpec{Kind: sql.MergeOrdered, Limit: 2, Distinct: true,
		SortCols: []int{1}, SortDesc: []bool{false}, Strip: 1}
	got := MergeResults(shards, spec, nil)
	// cut keeps (a,1),(a,2); strip → (a),(a); distinct → (a). The b row
	// must NOT slide into the cut.
	if len(got) != 1 || got[0][0].AsString() != "a" || len(got[0]) != 1 {
		t.Fatalf("got %v, want single stripped row [a]", got)
	}
}

func TestMergeConcat(t *testing.T) {
	shards := [][]types.Row{
		{{iv(1)}, {iv(2)}},
		{{iv(2)}, {iv(3)}},
	}
	t.Run("plain", func(t *testing.T) {
		spec := &sql.MergeSpec{Kind: sql.MergeConcat, Limit: -1}
		got := MergeResults(shards, spec, nil)
		if len(got) != 4 || got[0][0].AsInt() != 1 || got[2][0].AsInt() != 2 {
			t.Fatalf("concat order wrong: %v", got)
		}
	})
	t.Run("distinct then limit", func(t *testing.T) {
		spec := &sql.MergeSpec{Kind: sql.MergeConcat, Limit: 2, Distinct: true}
		got := MergeResults(shards, spec, nil)
		if len(got) != 2 || got[0][0].AsInt() != 1 || got[1][0].AsInt() != 2 {
			t.Fatalf("got %v, want [1 2]", got)
		}
	})
}

// grouped merge helpers: partial layout [group, SUM(x), COUNT(x)].
func avgSpec() *sql.MergeSpec {
	return &sql.MergeSpec{
		Kind:      sql.MergeGrouped,
		Limit:     -1,
		GroupCols: 1,
		Aggs: []sql.AggMerge{{
			Func: sql.AggAvg, ArgPos: -1, SumPos: 1, CountPos: 2, MinPos: -1, MaxPos: -1,
		}},
	}
}

// TestMergeGroupedAvg: AVG recombines as sum-of-sums over sum-of-counts,
// with NULL partials (empty partitions) contributing nothing and an
// all-empty group yielding NULL.
func TestMergeGroupedAvg(t *testing.T) {
	shards := [][]types.Row{
		{ // shard 0
			{sv("g1"), fv(10), iv(2)},     // sum=10 over 2 rows
			{sv("g2"), types.Null, iv(0)}, // empty partition for g2
			{sv("g3"), types.Null, iv(0)}, // g3 empty here…
		},
		{ // shard 1
			{sv("g1"), fv(5), iv(1)},
			{sv("g2"), types.Null, iv(0)}, // …and empty everywhere
			{sv("g3"), iv(7), iv(7)},      // integer partial sum
		},
	}
	got := MergeResults(shards, avgSpec(), nil)
	if len(got) != 3 {
		t.Fatalf("got %d groups, want 3", len(got))
	}
	byKey := map[string]types.Value{}
	for _, r := range got {
		byKey[r[0].AsString()] = r[1]
	}
	if v := byKey["g1"]; v.AsFloat() != 5.0 {
		t.Errorf("AVG g1 = %v, want 5 (15/3)", v)
	}
	if v := byKey["g2"]; !v.IsNull() {
		t.Errorf("AVG g2 = %v, want NULL (all partitions empty)", v)
	}
	if v := byKey["g3"]; v.AsFloat() != 1.0 {
		t.Errorf("AVG g3 = %v, want 1 (7/7)", v)
	}
}

// TestMergeGroupedDistinct: DISTINCT aggregates recombine from the merged
// value sets — the same value shipped by several shards counts once, and
// NULL values never count.
func TestMergeGroupedDistinct(t *testing.T) {
	// partial layout: [group, arg] — each shard ships distinct (g, x) pairs
	spec := &sql.MergeSpec{
		Kind:      sql.MergeGrouped,
		Limit:     -1,
		GroupCols: 1,
		Aggs: []sql.AggMerge{
			{Func: sql.AggCount, Distinct: true, ArgPos: 1, SumPos: -1, CountPos: -1, MinPos: -1, MaxPos: -1},
			{Func: sql.AggSum, Distinct: true, ArgPos: 1, SumPos: -1, CountPos: -1, MinPos: -1, MaxPos: -1},
		},
	}
	shards := [][]types.Row{
		{{sv("g"), iv(1)}, {sv("g"), iv(2)}, {sv("g"), types.Null}},
		{{sv("g"), iv(2)}, {sv("g"), iv(3)}},
		{{sv("g"), iv(1)}},
	}
	got := MergeResults(shards, spec, nil)
	if len(got) != 1 {
		t.Fatalf("got %d groups, want 1", len(got))
	}
	if c := got[0][1].AsInt(); c != 3 {
		t.Errorf("COUNT(DISTINCT) = %d, want 3 (1,2,3 deduped across shards)", c)
	}
	if s := got[0][2].AsInt(); s != 6 {
		t.Errorf("SUM(DISTINCT) = %d, want 6", s)
	}
	if got[0][2].Kind() != types.KindInt {
		t.Errorf("SUM(DISTINCT) over INT lost its kind: %v", got[0][2].Kind())
	}
}

// TestMergeGroupedScalar: scalar statements emit exactly one row even when
// no shard contributes, with SQL empty-input defaults (COUNT 0, others
// NULL).
func TestMergeGroupedScalar(t *testing.T) {
	spec := &sql.MergeSpec{
		Kind:      sql.MergeGrouped,
		Limit:     -1,
		GroupCols: 0,
		Scalar:    true,
		Aggs: []sql.AggMerge{
			{Func: sql.AggCount, ArgPos: -1, SumPos: -1, CountPos: 0, MinPos: -1, MaxPos: -1},
			{Func: sql.AggSum, ArgPos: -1, SumPos: 1, CountPos: -1, MinPos: -1, MaxPos: -1},
			{Func: sql.AggMin, ArgPos: -1, SumPos: -1, CountPos: -1, MinPos: 2, MaxPos: -1},
		},
	}
	t.Run("empty everywhere", func(t *testing.T) {
		got := MergeResults([][]types.Row{{}, {}}, spec, nil)
		want := []types.Row{{iv(0), types.Null, types.Null}}
		if !rowsEqual(got, want) {
			t.Fatalf("got %v, want %v", got, want)
		}
	})
	t.Run("partials combine", func(t *testing.T) {
		shards := [][]types.Row{
			{{iv(2), iv(10), iv(4)}},
			{{iv(0), types.Null, types.Null}}, // empty partition's scalar row
			{{iv(3), iv(5), iv(1)}},
		}
		got := MergeResults(shards, spec, nil)
		want := []types.Row{{iv(5), iv(15), iv(1)}}
		if !rowsEqual(got, want) {
			t.Fatalf("got %v, want %v", got, want)
		}
	})
}

// TestMergeGroupedMinMax: MIN/MAX recombine as min/max of per-shard
// extrema, NULL partials skipped.
func TestMergeGroupedMinMax(t *testing.T) {
	spec := &sql.MergeSpec{
		Kind:      sql.MergeGrouped,
		Limit:     -1,
		GroupCols: 1,
		Aggs: []sql.AggMerge{
			{Func: sql.AggMin, ArgPos: -1, SumPos: -1, CountPos: -1, MinPos: 1, MaxPos: -1},
			{Func: sql.AggMax, ArgPos: -1, SumPos: -1, CountPos: -1, MinPos: -1, MaxPos: 2},
		},
	}
	shards := [][]types.Row{
		{{sv("g"), fv(3), fv(9)}},
		{{sv("g"), types.Null, types.Null}},
		{{sv("g"), fv(1), fv(4)}},
	}
	got := MergeResults(shards, spec, nil)
	if got[0][1].AsFloat() != 1 || got[0][2].AsFloat() != 9 {
		t.Fatalf("min/max = %v/%v, want 1/9", got[0][1], got[0][2])
	}
}

// TestMergeGroupedHavingSortLimit: HAVING filters recombined rows (never
// per-shard partials), then ORDER BY + LIMIT apply before projection.
func TestMergeGroupedHavingSortLimit(t *testing.T) {
	// layout: [group, COUNT(*)]; final row = same
	spec := &sql.MergeSpec{
		Kind:      sql.MergeGrouped,
		Limit:     2,
		GroupCols: 1,
		Aggs: []sql.AggMerge{
			{Func: sql.AggCount, ArgPos: -1, SumPos: -1, CountPos: 1, MinPos: -1, MaxPos: -1},
		},
		Having: &expr.Cmp{Op: expr.GT, L: &expr.ColRef{Idx: 1}, R: &expr.Const{Val: iv(2)}},
		SortKeys: []sql.SortKey{
			{Expr: &expr.ColRef{Idx: 1}, Desc: true},
			{Expr: &expr.ColRef{Idx: 0}},
		},
		Project: []expr.Expr{&expr.ColRef{Idx: 0}},
	}
	shards := [][]types.Row{
		{{sv("a"), iv(2)}, {sv("b"), iv(1)}, {sv("c"), iv(4)}},
		{{sv("a"), iv(2)}, {sv("b"), iv(1)}, {sv("d"), iv(3)}},
	}
	// combined: a=4, b=2, c=4, d=3; having >2 keeps a,c,d; sort desc by
	// count then asc by name → a,c,d; limit 2 → a,c; project name only.
	got := MergeResults(shards, spec, nil)
	if len(got) != 2 || got[0][0].AsString() != "a" || got[1][0].AsString() != "c" {
		t.Fatalf("got %v, want [[a] [c]]", got)
	}
	if len(got[0]) != 1 {
		t.Fatalf("projection not applied: %v", got[0])
	}
}
