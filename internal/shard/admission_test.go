package shard

// Admission control across the scatter-gather seam: per-shard rejections
// must propagate coherently — broadcast writes and transaction commits
// admit all-or-nothing (partial admission would diverge replicated copies
// or split a commit), scatter reads surface one typed ErrOverloaded when
// any shard rejects. The tests freeze the per-shard queues with a long
// heartbeat: the first generation dispatches immediately, then every
// submission inside the window queues — so queue occupancy is deterministic.

import (
	"errors"
	"testing"
	"time"

	"shareddb/internal/core"
	"shareddb/internal/plan"
	"shareddb/internal/types"
)

// admissionRouter builds a 2-shard router whose engines reject beyond
// queueCap queued submissions and only dispatch once per heartbeat window.
func admissionRouter(t *testing.T, queueCap int, heartbeat time.Duration) *Router {
	t.Helper()
	return newRouterEnv(t, 2, core.Config{
		QueueDepthLimit: queueCap,
		Heartbeat:       heartbeat,
	})
}

func mustPrepareRouter(t *testing.T, r *Router, sqlText string) *plan.Statement {
	t.Helper()
	s, err := r.Prepare(sqlText)
	if err != nil {
		t.Fatalf("Prepare(%q): %v", sqlText, err)
	}
	return s
}

// warm runs one broadcast read to completion so every shard engine has
// dispatched its first generation — subsequent submissions land inside the
// heartbeat window and stay queued.
func warm(t *testing.T, r *Router, broadcast *plan.Statement) {
	t.Helper()
	if err := r.Submit(broadcast, nil).Wait(); err != nil {
		t.Fatalf("warm-up broadcast: %v", err)
	}
}

// pointParamsForShard returns n distinct i_id parameters owned by the given
// shard (the fixture partitions item on its primary key).
func pointParamsForShard(t *testing.T, r *Router, shard, n int) [][]types.Value {
	t.Helper()
	var out [][]types.Value
	for id := int64(0); id < 120 && len(out) < n; id++ {
		if r.Partitioning().ShardOf(types.NewInt(id)) == shard {
			out = append(out, []types.Value{types.NewInt(id)})
		}
	}
	if len(out) < n {
		t.Fatalf("fixture has fewer than %d items on shard %d", n, shard)
	}
	return out
}

func TestShardBroadcastWriteAdmissionAllOrNothing(t *testing.T) {
	const queueCap = 2
	r := admissionRouter(t, queueCap, time.Second)
	// item partitions: this COUNT scatters to every shard, filling both
	// queues per submission (a replicated-table read would round-robin to
	// one shard and leave the other queue empty).
	scatter := mustPrepareRouter(t, r, "SELECT COUNT(*) FROM item")
	// author replicates: the probe round-robins across shards, so two
	// consecutive probes observe both replicas.
	probe := mustPrepareRouter(t, r, "SELECT COUNT(*) FROM author WHERE a_lname = 'OVERLOAD'")
	probeReplicas := func(context string, want int64) {
		t.Helper()
		for replica := 0; replica < 2; replica++ {
			res := r.Submit(probe, nil)
			if err := res.Wait(); err != nil {
				t.Fatalf("%s: probe: %v", context, err)
			}
			if n := res.Rows[0][0].AsInt(); n != want {
				t.Fatalf("%s: replica sees %d updated rows, want %d (copies diverged?)", context, n, want)
			}
		}
	}
	// author replicates: this write broadcasts to every shard.
	write := mustPrepareRouter(t, r, "UPDATE author SET a_lname = 'OVERLOAD' WHERE a_id = 3")
	warm(t, r, scatter)

	// Fill both shard queues to the cap with scatter reads (each enqueues
	// on every shard), then ask for the broadcast write: admission must
	// reject it on the first full shard WITHOUT enqueueing it anywhere.
	var queued []*core.Result
	for i := 0; i < queueCap; i++ {
		queued = append(queued, r.Submit(scatter, nil))
	}
	err := r.Submit(write, nil).Wait()
	if !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("broadcast write into full queues: got %v, want ErrOverloaded", err)
	}
	var oe *core.OverloadError
	if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
		t.Fatalf("rejection must carry a retry hint, got %+v", err)
	}

	// Drain the window and verify the rejected write left no trace on any
	// replica — partial admission would have diverged the copies.
	for _, q := range queued {
		if err := q.Wait(); err != nil {
			t.Fatalf("queued read: %v", err)
		}
	}
	probeReplicas("after rejection", 0)

	// The reservations must have been released: with empty queues the same
	// write now admits on every shard (a leak would eat queue capacity
	// forever).
	if err := r.Submit(write, nil).Wait(); err != nil {
		t.Fatalf("write after drain must admit (reservation leak?): %v", err)
	}
	probeReplicas("after admitted write", 1)
}

func TestShardScatterReadPartialRejectionMergesToOverload(t *testing.T) {
	const queueCap = 2
	r := admissionRouter(t, queueCap, time.Second)
	scatter := mustPrepareRouter(t, r, "SELECT COUNT(*) FROM item")
	point := mustPrepareRouter(t, r, "SELECT i_title FROM item WHERE i_id = ?")
	warm(t, r, scatter)

	// Fill ONLY shard 0's queue with point reads; shard 1 stays empty.
	var queued []*core.Result
	for _, params := range pointParamsForShard(t, r, 0, queueCap) {
		queued = append(queued, r.Submit(point, params))
	}
	// The scatter read is admitted by shard 1 and rejected by shard 0: the
	// merged outcome must be one coherent typed overload (reads mutate
	// nothing, so "retry the whole statement" is always safe).
	err := r.Submit(scatter, nil).Wait()
	if !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("partially rejected scatter read: got %v, want ErrOverloaded", err)
	}
	var oe *core.OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("merged rejection must stay typed, got %T", err)
	}

	for _, q := range queued {
		if err := q.Wait(); err != nil {
			t.Fatalf("queued point read: %v", err)
		}
	}
	// Retry after drain: full result again.
	res := r.Submit(scatter, nil)
	if err := res.Wait(); err != nil {
		t.Fatalf("scatter retry after drain: %v", err)
	}
	if n := res.Rows[0][0].AsInt(); n != 120 {
		t.Fatalf("scatter retry returned %d, want 120", n)
	}
}

func TestShardTxCommitOverloadRejectsWholeGroup(t *testing.T) {
	const queueCap = 2
	r := admissionRouter(t, queueCap, time.Second)
	scatter := mustPrepareRouter(t, r, "SELECT COUNT(*) FROM item WHERE i_id >= 1000")
	warm(t, r, mustPrepareRouter(t, r, "SELECT COUNT(*) FROM item"))

	// Two inserts owned by different shards: the commit group is dirty on
	// both.
	var idA, idB int64 = -1, -1
	for id := int64(1000); id < 1200 && (idA < 0 || idB < 0); id++ {
		if r.Partitioning().ShardOf(types.NewInt(id)) == 0 {
			if idA < 0 {
				idA = id
			}
		} else if idB < 0 {
			idB = id
		}
	}
	point := mustPrepareRouter(t, r, "SELECT i_title FROM item WHERE i_id = ?")
	var queued []*core.Result
	for _, params := range pointParamsForShard(t, r, 0, queueCap) {
		queued = append(queued, r.Submit(point, params))
	}

	tx := r.BeginTx()
	row := func(id int64) types.Row {
		return types.Row{types.NewInt(id), types.NewString("tx"), types.NewInt(1),
			types.NewString("ARTS"), types.NewFloat(1)}
	}
	tx.Insert("item", row(idA))
	tx.Insert("item", row(idB))
	err := r.SubmitTx(tx).Wait()
	if !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("commit with one full shard: got %v, want ErrOverloaded", err)
	}

	for _, q := range queued {
		if err := q.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	// Neither shard may have applied its half of the rejected group.
	res := r.Submit(scatter, nil)
	if err := res.Wait(); err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0][0].AsInt(); n != 0 {
		t.Fatalf("rejected tx group applied %d rows, want 0", n)
	}
}
