package shard

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"shareddb/internal/baseline"
	"shareddb/internal/core"
	"shareddb/internal/plan"
	"shareddb/internal/types"
)

// Router folding tests: duplicates must collapse BEFORE scatter (one
// scatter-gather serves every subscriber) and before the round-robin
// cursor can spread RouteAny duplicates across shards. The wide heartbeat
// opens a deterministic fold window on every shard engine, exactly like
// the core fold tests.
const routerFoldWindow = 400 * time.Millisecond

func foldRouterCfg() core.Config {
	return core.Config{FoldQueries: true, Heartbeat: routerFoldWindow}
}

// warmRouter runs one broadcast read to completion so every shard engine's
// heartbeat clock is ticking and the next submissions pool in one window.
func warmRouter(t *testing.T, r *Router, s *plan.Statement, params []types.Value) {
	t.Helper()
	res := r.Submit(s, params)
	if err := res.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestFoldScatterDuplicates(t *testing.T) {
	for _, shards := range shardCounts(t) {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			router := newRouterEnv(t, shards, foldRouterCfg())
			oracle := newOracle(t)

			const sqlText = `SELECT i_id, i_title FROM item WHERE i_subject = ?`
			stmt, err := router.Prepare(sqlText)
			if err != nil {
				t.Fatal(err)
			}
			oStmt, err := oracle.Prepare(sqlText)
			if err != nil {
				t.Fatal(err)
			}
			params := []types.Value{types.NewString("SCIENCE")}
			warmRouter(t, router, stmt, []types.Value{types.NewString("ARTS")})
			before := router.Stats()

			const dup = 8
			results := make([]*core.Result, dup)
			for i := range results {
				results[i] = router.Submit(stmt, append([]types.Value(nil), params...))
			}
			for i, res := range results {
				if err := res.Wait(); err != nil {
					t.Fatalf("duplicate %d: %v", i, err)
				}
			}
			want, err := oStmt.Exec(params)
			if err != nil {
				t.Fatal(err)
			}
			for i, res := range results {
				if !sameRows(res.Rows, want.Rows) {
					t.Fatalf("duplicate %d: %d rows vs oracle %d:\n%v\n%v",
						i, len(res.Rows), len(want.Rows), canon(res.Rows), canon(want.Rows))
				}
				// Folded subscribers share the lead's gather verbatim:
				// identical order, not just identical multiset.
				for j := range res.Rows {
					for k := range res.Rows[j] {
						if !res.Rows[j][k].Equal(results[0].Rows[j][k]) {
							t.Fatalf("duplicate %d row %d differs from lead's", i, j)
						}
					}
				}
			}
			// At shards=1 the engine folds; above that the router folds
			// before scatter. Either way the duplicates cost one execution.
			st := router.Stats()
			if got := st.FoldedQueries - before.FoldedQueries; got != dup-1 {
				t.Fatalf("folded %d, want %d", got, dup-1)
			}
			if got := st.QueriesRun - before.QueriesRun; got != uint64(shards) {
				t.Fatalf("engines ran %d activations, want %d (one per shard)", got, shards)
			}
		})
	}
}

func TestFoldRouteAnyDuplicates(t *testing.T) {
	const shards = 3
	router := newRouterEnv(t, shards, foldRouterCfg())
	oracle := newOracle(t)

	// author is replicated: this read is RouteAny, which round-robins —
	// without router folding, duplicates would land on different shards
	// and never meet in one engine's fold index.
	const sqlText = `SELECT a_lname FROM author WHERE a_id = ?`
	stmt, err := router.Prepare(sqlText)
	if err != nil {
		t.Fatal(err)
	}
	oStmt, err := oracle.Prepare(sqlText)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := router.Prepare(`SELECT i_id FROM item WHERE i_subject = ?`)
	if err != nil {
		t.Fatal(err)
	}
	warmRouter(t, router, warm, []types.Value{types.NewString("ARTS")})
	before := router.Stats()

	const dup = 6
	params := []types.Value{types.NewInt(7)}
	results := make([]*core.Result, dup)
	for i := range results {
		results[i] = router.Submit(stmt, append([]types.Value(nil), params...))
	}
	for i, res := range results {
		if err := res.Wait(); err != nil {
			t.Fatalf("duplicate %d: %v", i, err)
		}
	}
	want, err := oStmt.Exec(params)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if !sameRows(res.Rows, want.Rows) {
			t.Fatalf("duplicate %d mismatch: %v vs %v", i, canon(res.Rows), canon(want.Rows))
		}
	}
	st := router.Stats()
	if got := st.FoldedQueries - before.FoldedQueries; got != dup-1 {
		t.Fatalf("folded %d, want %d", got, dup-1)
	}
	if got := st.QueriesRun - before.QueriesRun; got != 1 {
		t.Fatalf("engines ran %d activations, want 1 (one shard answers the whole group)", got)
	}
}

// TestDifferentialFoldSharded replays a duplicate-heavy randomized read
// workload through the router with folding on and off at every configured
// shard count, asserting each client's rows match the query-at-a-time
// oracle bit-for-bit either way.
func TestDifferentialFoldSharded(t *testing.T) {
	templates := []struct {
		sql     string
		mkParam func(r *rand.Rand) []types.Value
	}{
		{"SELECT i_id, i_title FROM item WHERE i_subject = ?",
			func(r *rand.Rand) []types.Value {
				return []types.Value{types.NewString(fixtureSubjects[r.Intn(len(fixtureSubjects))])}
			}},
		{"SELECT i_title, i_price FROM item WHERE i_id = ?",
			func(r *rand.Rand) []types.Value { return []types.Value{types.NewInt(int64(r.Intn(6)))} }},
		{"SELECT a_lname FROM author WHERE a_id = ?",
			func(r *rand.Rand) []types.Value { return []types.Value{types.NewInt(int64(r.Intn(5)))} }},
		{"SELECT i_title, a_lname FROM item, author WHERE i_a_id = a_id AND i_subject = ?",
			func(r *rand.Rand) []types.Value {
				return []types.Value{types.NewString(fixtureSubjects[r.Intn(2)])}
			}},
		{"SELECT i_subject, COUNT(*), AVG(i_price) FROM item WHERE i_price > ? GROUP BY i_subject",
			func(r *rand.Rand) []types.Value {
				return []types.Value{types.NewFloat(float64(r.Intn(3)) * 25)}
			}},
		{"SELECT i_id, i_price FROM item WHERE i_subject = ? ORDER BY i_price DESC, i_id LIMIT 8",
			func(r *rand.Rand) []types.Value {
				return []types.Value{types.NewString(fixtureSubjects[r.Intn(2)])}
			}},
	}
	for _, shards := range shardCounts(t) {
		for _, fold := range []bool{false, true} {
			t.Run(fmt.Sprintf("shards=%d/fold=%v", shards, fold), func(t *testing.T) {
				router := newRouterEnv(t, shards, core.Config{FoldQueries: fold})
				oracle := newOracle(t)

				stmts := make([]*plan.Statement, len(templates))
				oStmts := make([]*baseline.Stmt, len(templates))
				for i, tpl := range templates {
					var err error
					if stmts[i], err = router.Prepare(tpl.sql); err != nil {
						t.Fatal(err)
					}
					if oStmts[i], err = oracle.Prepare(tpl.sql); err != nil {
						t.Fatal(err)
					}
				}

				r := rand.New(rand.NewSource(int64(7000 + shards)))
				for round := 0; round < 6; round++ {
					n := 24 + r.Intn(16)
					idxs := make([]int, n)
					params := make([][]types.Value, n)
					results := make([]*core.Result, n)
					for i := 0; i < n; i++ {
						idxs[i] = r.Intn(len(templates))
						params[i] = templates[idxs[i]].mkParam(r)
						results[i] = router.Submit(stmts[idxs[i]], params[i])
					}
					for i := 0; i < n; i++ {
						if err := results[i].Wait(); err != nil {
							t.Fatalf("round %d query %d: %v", round, i, err)
						}
						want, err := oStmts[idxs[i]].Exec(params[i])
						if err != nil {
							t.Fatal(err)
						}
						if !sameRows(results[i].Rows, want.Rows) {
							t.Fatalf("round %d fold=%v: mismatch for %q params %v:\nrouter (%d rows): %v\noracle (%d rows): %v",
								round, fold, templates[idxs[i]].sql, params[i],
								len(results[i].Rows), canon(results[i].Rows),
								len(want.Rows), canon(want.Rows))
						}
					}
				}
				st := router.Stats()
				if !fold && st.FoldedQueries != 0 {
					t.Fatalf("folding off but FoldedQueries = %d", st.FoldedQueries)
				}
			})
		}
	}
}
