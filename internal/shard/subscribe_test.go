package shard

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"shareddb/internal/core"
	"shareddb/internal/testutil"
	"shareddb/internal/types"
)

// applySubUpdate folds one delivered update into the subscriber's tracked
// result, failing the test if a removal names a row the tracked state does
// not hold (a delta the merged feed could not legally have produced).
func applySubUpdate(t *testing.T, tracked []types.Row, u core.SubscriptionUpdate) []types.Row {
	t.Helper()
	if u.Full {
		return append([]types.Row{}, u.Rows...)
	}
	for _, rm := range u.Removed {
		k := types.EncodeKey(rm...)
		found := -1
		for i, row := range tracked {
			if types.EncodeKey(row...) == k {
				found = i
				break
			}
		}
		if found < 0 {
			t.Fatalf("delta removes row %v not present in tracked state", rm)
		}
		tracked = append(tracked[:found], tracked[found+1:]...)
	}
	return append(tracked, u.Added...)
}

// awaitSubState consumes updates until the tracked result equals want.
func awaitSubState(t *testing.T, sub *core.Subscription, tracked []types.Row, want []types.Row) []types.Row {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for !testutil.SameRows(tracked, want) {
		select {
		case u, ok := <-sub.Updates():
			if !ok {
				t.Fatalf("subscription closed while converging: tracked %v want %v",
					testutil.CanonRows(tracked), testutil.CanonRows(want))
			}
			tracked = applySubUpdate(t, tracked, u)
		case <-deadline:
			t.Fatalf("timed out converging subscription state:\ntracked (%d): %v\nwant (%d): %v",
				len(tracked), testutil.CanonRows(tracked), len(want), testutil.CanonRows(want))
		}
	}
	return tracked
}

// TestShardedSubscription drives a merged scatter subscription and a
// point-routed subscription through a random write stream on every shard
// count, checking each delivered stream converges to what a fresh router
// query returns and that the router's stats see the standing queries.
func TestShardedSubscription(t *testing.T) {
	for _, n := range shardCounts(t) {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			r := newRouterEnv(t, n, core.Config{Workers: 2, IncrementalState: true})

			scatter, err := r.Prepare("SELECT i_id, i_title, i_price FROM item WHERE i_subject = ?")
			if err != nil {
				t.Fatal(err)
			}
			point, err := r.Prepare("SELECT i_title, i_price FROM item WHERE i_id = ?")
			if err != nil {
				t.Fatal(err)
			}
			scatterParams := []types.Value{types.NewString("ARTS")}
			pointParams := []types.Value{types.NewInt(4)} // 4%4==0 → ARTS, touched by subject writes

			subScatter, err := r.Subscribe(scatter, scatterParams)
			if err != nil {
				t.Fatalf("Subscribe scatter: %v", err)
			}
			subPoint, err := r.Subscribe(point, pointParams)
			if err != nil {
				t.Fatalf("Subscribe point: %v", err)
			}

			query := func(stmtIdx int) []types.Row {
				var res *core.Result
				if stmtIdx == 0 {
					res = r.Submit(scatter, scatterParams)
				} else {
					res = r.Submit(point, pointParams)
				}
				if err := res.Wait(); err != nil {
					t.Fatalf("oracle query: %v", err)
				}
				return res.Rows
			}

			// Initial delivery: a full result per subscription.
			tracked := make([][]types.Row, 2)
			for i, sub := range []*core.Subscription{subScatter, subPoint} {
				select {
				case u := <-sub.Updates():
					if !u.Full {
						t.Fatalf("sub %d: first delivery not full: %+v", i, u)
					}
					tracked[i] = applySubUpdate(t, nil, u)
				case <-time.After(10 * time.Second):
					t.Fatalf("sub %d: no initial full result", i)
				}
				if want := query(i); !testutil.SameRows(tracked[i], want) {
					t.Fatalf("sub %d initial full mismatch: %v vs %v",
						i, testutil.CanonRows(tracked[i]), testutil.CanonRows(want))
				}
			}
			if got := r.Stats().SubscriptionsActive; got == 0 {
				t.Fatal("router stats report no active subscriptions")
			}

			ins, err := r.Prepare("INSERT INTO item VALUES (?, ?, ?, ?, ?)")
			if err != nil {
				t.Fatal(err)
			}
			updPrice, err := r.Prepare("UPDATE item SET i_price = ? WHERE i_id = ?")
			if err != nil {
				t.Fatal(err)
			}
			updSubj, err := r.Prepare("UPDATE item SET i_subject = ? WHERE i_id = ?")
			if err != nil {
				t.Fatal(err)
			}
			del, err := r.Prepare("DELETE FROM item WHERE i_id = ?")
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(40 + n)))
			nextID := int64(1000)
			for round := 0; round < 20; round++ {
				var res *core.Result
				switch rng.Intn(4) {
				case 0:
					res = r.Submit(ins, []types.Value{types.NewInt(nextID),
						types.NewString(fmt.Sprintf("Shard sub %03d", nextID)),
						types.NewInt(nextID % 30),
						types.NewString(fixtureSubjects[rng.Intn(len(fixtureSubjects))]),
						types.NewFloat(float64(rng.Intn(9000)) / 100)})
					nextID++
				case 1:
					res = r.Submit(updPrice, []types.Value{
						types.NewFloat(float64(rng.Intn(9000)) / 100),
						types.NewInt(int64(rng.Intn(120)))})
				case 2:
					res = r.Submit(updSubj, []types.Value{
						types.NewString(fixtureSubjects[rng.Intn(len(fixtureSubjects))]),
						types.NewInt(int64(rng.Intn(120)))})
				default:
					res = r.Submit(del, []types.Value{types.NewInt(int64(rng.Intn(120)))})
				}
				if err := res.Wait(); err != nil {
					t.Fatalf("round %d write: %v", round, err)
				}
				tracked[0] = awaitSubState(t, subScatter, tracked[0], query(0))
				tracked[1] = awaitSubState(t, subPoint, tracked[1], query(1))
			}

			if r.Stats().SubscriptionUpdates == 0 {
				t.Error("router stats count no subscription updates after a delivered stream")
			}
			// Close detaches every per-shard feed; the router's gauge drains.
			subScatter.Close()
			subPoint.Close()
			deadline := time.Now().Add(10 * time.Second)
			for r.Stats().SubscriptionsActive != 0 {
				if time.Now().After(deadline) {
					t.Fatalf("SubscriptionsActive stuck at %d after Close", r.Stats().SubscriptionsActive)
				}
				time.Sleep(time.Millisecond)
			}
			// Generations keep flowing after detach.
			res := r.Submit(updPrice, []types.Value{types.NewFloat(1), types.NewInt(0)})
			if err := res.Wait(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestShardedSubscribeRejections pins the Subscribe contract on a
// multi-shard router: writes and non-concat-mergeable scatter statements
// (cross-shard ORDER BY, GROUP BY, DISTINCT, LIMIT) are refused.
func TestShardedSubscribeRejections(t *testing.T) {
	r := newRouterEnv(t, 3, core.Config{Workers: 1})
	reject := []string{
		"UPDATE item SET i_price = ? WHERE i_id = ?",
		"SELECT i_id FROM item ORDER BY i_id",
		"SELECT i_subject, COUNT(*) FROM item GROUP BY i_subject",
		"SELECT DISTINCT i_subject FROM item",
		"SELECT i_id FROM item LIMIT 5",
	}
	for _, sqlText := range reject {
		stmt, err := r.Prepare(sqlText)
		if err != nil {
			t.Fatalf("Prepare(%q): %v", sqlText, err)
		}
		if _, err := r.Subscribe(stmt, []types.Value{types.NewInt(1), types.NewInt(2)}); err == nil {
			t.Errorf("Subscribe(%q) succeeded, want error", sqlText)
		}
	}
	// Replicated-only reads route to a single shard and subscribe fine even
	// with an ORDER BY (no cross-shard merge to recombine).
	repl, err := r.Prepare("SELECT a_lname FROM author WHERE a_id = ?")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := r.Subscribe(repl, []types.Value{types.NewInt(3)})
	if err != nil {
		t.Fatalf("Subscribe on replicated read: %v", err)
	}
	select {
	case u := <-sub.Updates():
		if !u.Full {
			t.Fatalf("first delivery not full: %+v", u)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no initial full on replicated-read subscription")
	}
	sub.Close()
}
