// Package shard implements horizontal scale-out for the SharedDB engine:
// N shard engines, each owning a hash partition (on primary key) of every
// table and running its own always-on global plan and generation loop,
// behind a Router that speaks the same Executor API as a single engine.
//
// Point writes and reads whose predicates pin a full primary key go to the
// owning shard and pass results through untouched; everything else
// scatters to all shards and gathers through deterministic merges: k-way
// ordered merge for ORDER BY (ties keep shard order, LIMIT re-cut),
// partial-aggregate recombination for GROUP BY (SUM/COUNT/MIN/MAX summed,
// AVG from sum+count pairs, DISTINCT aggregates from cross-shard-merged
// value sets), and concatenation in shard order otherwise. The per-shard
// statement rewrites and merge recipes are compiled once at prepare time
// by sql.PlanShards.
package shard

import (
	"sort"

	"shareddb/internal/expr"
	"shareddb/internal/sql"
	"shareddb/internal/types"
)

// MergeResults recombines per-shard result sets according to spec.
// shardRows[i] is shard i's rows in that shard's emission order (sorted for
// ordered statements). The returned rows may alias the input rows (the
// per-shard results are owned by the merged request).
func MergeResults(shardRows [][]types.Row, spec *sql.MergeSpec, params []types.Value) []types.Row {
	switch spec.Kind {
	case sql.MergeOrdered:
		return mergeOrdered(shardRows, spec)
	case sql.MergeGrouped:
		return mergeGrouped(shardRows, spec, params)
	default:
		return mergeConcat(shardRows, spec)
	}
}

// mergeConcat concatenates in shard order, dedups when the statement is
// SELECT DISTINCT (per-shard dedup already removed intra-shard duplicates)
// and re-cuts LIMIT. LIMIT counts post-DISTINCT rows, mirroring the
// engine's sink.
func mergeConcat(shardRows [][]types.Row, spec *sql.MergeSpec) []types.Row {
	total := 0
	for _, rows := range shardRows {
		total += len(rows)
	}
	out := make([]types.Row, 0, total)
	for _, rows := range shardRows {
		out = append(out, rows...)
	}
	if spec.Distinct {
		out = dedupRows(out)
	}
	if spec.Limit >= 0 && len(out) > spec.Limit {
		out = out[:spec.Limit]
	}
	return out
}

// mergeOrdered k-way merges the per-shard streams on the statement's sort
// key columns; ties keep shard order, making the merge deterministic. The
// LIMIT re-cut happens before the appended key columns are stripped and
// before DISTINCT, mirroring the single-engine pipeline (the shared sort
// cuts Top-N before projection and dedup).
func mergeOrdered(shardRows [][]types.Row, spec *sql.MergeSpec) []types.Row {
	total := 0
	heads := make([]int, len(shardRows))
	for _, rows := range shardRows {
		total += len(rows)
	}
	out := make([]types.Row, 0, total)
	for len(out) < total {
		best := -1
		for s, rows := range shardRows {
			if heads[s] >= len(rows) {
				continue
			}
			if best < 0 || orderedLess(rows[heads[s]], shardRows[best][heads[best]], spec) {
				best = s
			}
		}
		out = append(out, shardRows[best][heads[best]])
		heads[best]++
		if spec.Limit >= 0 && len(out) == spec.Limit {
			break
		}
	}
	if spec.Strip > 0 {
		for i, r := range out {
			out[i] = r[:len(r)-spec.Strip]
		}
	}
	if spec.Distinct {
		out = dedupRows(out)
	}
	return out
}

// orderedLess compares two rows on the merge's sort columns (strict less;
// equal rows keep the earlier shard).
func orderedLess(a, b types.Row, spec *sql.MergeSpec) bool {
	for i, col := range spec.SortCols {
		d := a[col].Compare(b[col])
		if d == 0 {
			continue
		}
		if spec.SortDesc[i] {
			return d > 0
		}
		return d < 0
	}
	return false
}

// dedupRows removes duplicate rows, keeping first occurrences in order —
// the same EncodeKey dedup the engine's sink applies for SELECT DISTINCT.
func dedupRows(rows []types.Row) []types.Row {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		k := types.EncodeKey(r...)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

// aggAcc accumulates one aggregate of one recombined group across shards,
// mirroring the grouped operator's per-(group, query) state.
type aggAcc struct {
	count    int64
	sumI     int64
	sumF     float64
	isFloat  bool
	hasSum   bool
	min, max types.Value
	distinct map[string]struct{}
}

// addValue folds one argument value (a cross-shard-deduplicated DISTINCT
// value) with the exact semantics of the shared group operator's add.
func (a *aggAcc) addValue(v types.Value) {
	if v.IsNull() {
		return
	}
	if a.distinct == nil {
		a.distinct = map[string]struct{}{}
	}
	k := types.EncodeKey(v)
	if _, seen := a.distinct[k]; seen {
		return
	}
	a.distinct[k] = struct{}{}
	a.count++
	a.addSum(v)
	if a.min.IsNull() || v.Compare(a.min) < 0 {
		a.min = v
	}
	if a.max.IsNull() || v.Compare(a.max) > 0 {
		a.max = v
	}
}

// addSum folds a partial (or distinct) value into the sum components.
func (a *aggAcc) addSum(v types.Value) {
	if v.IsNull() {
		return
	}
	a.hasSum = true
	switch v.Kind() {
	case types.KindFloat:
		a.isFloat = true
		a.sumF += v.Float
	case types.KindInt, types.KindBool, types.KindTime:
		a.sumI += v.Int
	}
}

// addPartial folds one per-shard partial-aggregate row into the
// accumulator.
func (a *aggAcc) addPartial(row types.Row, am sql.AggMerge) {
	if am.Distinct {
		a.addValue(row[am.ArgPos])
		return
	}
	if am.CountPos >= 0 {
		a.count += row[am.CountPos].AsInt()
	}
	if am.SumPos >= 0 {
		a.addSum(row[am.SumPos])
	}
	if am.MinPos >= 0 {
		if v := row[am.MinPos]; !v.IsNull() && (a.min.IsNull() || v.Compare(a.min) < 0) {
			a.min = v
		}
	}
	if am.MaxPos >= 0 {
		if v := row[am.MaxPos]; !v.IsNull() && (a.max.IsNull() || v.Compare(a.max) > 0) {
			a.max = v
		}
	}
}

// result finalizes the recombined aggregate, matching the single-engine
// NULL semantics: SUM/AVG over no input are NULL, COUNT is 0, MIN/MAX stay
// NULL.
func (a *aggAcc) result(am sql.AggMerge) types.Value {
	switch am.Func {
	case sql.AggCount:
		return types.NewInt(a.count)
	case sql.AggSum:
		if !a.hasSum {
			return types.Null
		}
		if a.isFloat {
			return types.NewFloat(a.sumF + float64(a.sumI))
		}
		return types.NewInt(a.sumI)
	case sql.AggMin:
		return a.min
	case sql.AggMax:
		return a.max
	case sql.AggAvg:
		if a.count == 0 {
			return types.Null
		}
		return types.NewFloat((a.sumF + float64(a.sumI)) / float64(a.count))
	default:
		return types.Null
	}
}

// mergeGrouped recombines per-shard partial-aggregate rows: groups are
// keyed on the leading group columns (first-seen order across shards, shard
// order first — deterministic), aggregates recombine per AggMerge, then the
// final rows run the statement's per-query tail: HAVING, ORDER BY, LIMIT,
// projection, DISTINCT.
func mergeGrouped(shardRows [][]types.Row, spec *sql.MergeSpec, params []types.Value) []types.Row {
	type groupAcc struct {
		keyVals types.Row
		aggs    []aggAcc
	}
	groups := map[string]*groupAcc{}
	var order []*groupAcc
	for _, rows := range shardRows {
		for _, row := range rows {
			k := types.EncodeKey(row[:spec.GroupCols]...)
			g := groups[k]
			if g == nil {
				g = &groupAcc{keyVals: row[:spec.GroupCols], aggs: make([]aggAcc, len(spec.Aggs))}
				groups[k] = g
				order = append(order, g)
			}
			for i, am := range spec.Aggs {
				g.aggs[i].addPartial(row, am)
			}
		}
	}
	// Scalar statements produce exactly one row even over empty input.
	if spec.Scalar && len(order) == 0 {
		order = append(order, &groupAcc{aggs: make([]aggAcc, len(spec.Aggs))})
	}

	finals := make([]types.Row, 0, len(order))
	for _, g := range order {
		row := make(types.Row, 0, spec.GroupCols+len(spec.Aggs))
		row = append(row, g.keyVals...)
		for i, am := range spec.Aggs {
			row = append(row, g.aggs[i].result(am))
		}
		if spec.Having != nil && !expr.TruthyEval(spec.Having, row, params) {
			continue
		}
		finals = append(finals, row)
	}

	sorted := len(spec.SortKeys) > 0
	if sorted {
		sortFinal(finals, spec.SortKeys, params)
		// Sorted statements cut LIMIT before projection and DISTINCT (the
		// shared sort's Top-N); unsorted ones cut after dedup (the sink).
		if spec.Limit >= 0 && len(finals) > spec.Limit {
			finals = finals[:spec.Limit]
		}
	}
	out := finals
	if len(spec.Project) > 0 {
		out = make([]types.Row, len(finals))
		for i, row := range finals {
			pr := make(types.Row, len(spec.Project))
			for j, pe := range spec.Project {
				pr[j] = pe.Eval(row, params)
			}
			out[i] = pr
		}
	}
	if spec.Distinct {
		out = dedupRows(out)
	}
	if !sorted && spec.Limit >= 0 && len(out) > spec.Limit {
		out = out[:spec.Limit]
	}
	return out
}

// sortFinal stable-sorts recombined group rows on the statement's bound
// sort keys (first-seen group order breaks ties, as the shared sort's
// stability does on a single engine).
func sortFinal(rows []types.Row, keys []sql.SortKey, params []types.Value) {
	type keyed struct {
		row  types.Row
		keys []types.Value
	}
	ks := make([]keyed, len(rows))
	for i, r := range rows {
		kv := make([]types.Value, len(keys))
		for j, k := range keys {
			kv[j] = k.Expr.Eval(r, params)
		}
		ks[i] = keyed{row: r, keys: kv}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		for j := range keys {
			d := ks[a].keys[j].Compare(ks[b].keys[j])
			if d == 0 {
				continue
			}
			if keys[j].Desc {
				return d > 0
			}
			return d < 0
		}
		return false
	})
	for i := range ks {
		rows[i] = ks[i].row
	}
}
