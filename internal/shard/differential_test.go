package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"shareddb/internal/baseline"
	"shareddb/internal/core"
	"shareddb/internal/plan"
	"shareddb/internal/storage"
	"shareddb/internal/testutil"
	"shareddb/internal/types"
)

// Differential testing for the sharded engine: the router must return, for
// every query, exactly the rows a query-at-a-time engine over the unsharded
// data returns — at any shard count, through every merge path (concat,
// ordered k-way merge, partial-aggregate recombination), and with writes
// interleaved between read bursts. SHAREDDB_TEST_SHARDS picks the counts
// (CI runs 1 and 3).

// canon/sameRows live in internal/testutil (floats rounded: the
// cross-shard partial-sum association differs from arrival order).
var (
	canon    = testutil.CanonRows
	sameRows = testutil.SameRows
)

type template struct {
	sql     string
	write   bool
	mkParam func(r *rand.Rand) []types.Value
}

// sweepTemplates covers every routing and merge class: point reads, shard-
// local index reads, broadcast scans, joins, ordered merges with LIMIT
// re-cuts, grouped recombination (COUNT/SUM/AVG/MIN/MAX), DISTINCT
// aggregates under HAVING, scalar aggregates, and SELECT DISTINCT.
func sweepTemplates() []template {
	subjects := append([]string{}, fixtureSubjects...)
	subjects = append(subjects, "NONE")
	subj := func(r *rand.Rand) types.Value {
		return types.NewString(subjects[r.Intn(len(subjects))])
	}
	return []template{
		{sql: "SELECT i_title, i_price FROM item WHERE i_id = ?",
			mkParam: func(r *rand.Rand) []types.Value { return []types.Value{types.NewInt(int64(r.Intn(140)))} }},
		{sql: "SELECT i_id, i_title FROM item WHERE i_subject = ?",
			mkParam: func(r *rand.Rand) []types.Value { return []types.Value{subj(r)} }},
		{sql: "SELECT i_id FROM item WHERE i_price > ? AND i_price < ?",
			mkParam: func(r *rand.Rand) []types.Value {
				lo := r.Float64() * 60
				return []types.Value{types.NewFloat(lo), types.NewFloat(lo + 25)}
			}},
		{sql: "SELECT i_id, i_title FROM item WHERE i_title LIKE ?",
			mkParam: func(r *rand.Rand) []types.Value {
				return []types.Value{types.NewString(fmt.Sprintf("%%%d%%", r.Intn(10)))}
			}},
		{sql: "SELECT i_title, a_lname FROM item, author WHERE i_a_id = a_id AND i_subject = ?",
			mkParam: func(r *rand.Rand) []types.Value { return []types.Value{subj(r)} }},
		{sql: "SELECT i_id, i_title, a_lname FROM item, author WHERE i_a_id = a_id AND i_id = ?",
			mkParam: func(r *rand.Rand) []types.Value { return []types.Value{types.NewInt(int64(r.Intn(140)))} }},
		// ordered merge with LIMIT re-cut; i_id tie-break keeps the Top-N
		// deterministic for both engines
		{sql: "SELECT i_id, i_price FROM item WHERE i_subject = ? ORDER BY i_price DESC, i_id LIMIT 8",
			mkParam: func(r *rand.Rand) []types.Value { return []types.Value{subj(r)} }},
		// grouped Top-N over a join: partial SUM recombination + final sort
		{sql: `SELECT i_id, SUM(ol_qty) AS val FROM order_line, item
		       WHERE ol_i_id = i_id AND ol_o_id > ? GROUP BY i_id ORDER BY val DESC, i_id LIMIT 10`,
			mkParam: func(r *rand.Rand) []types.Value { return []types.Value{types.NewInt(int64(r.Intn(50)))} }},
		// COUNT/AVG recombination with NULL prices in the fixture
		{sql: "SELECT i_subject, COUNT(*), AVG(i_price), MIN(i_price), MAX(i_price) FROM item WHERE i_price > ? GROUP BY i_subject",
			mkParam: func(r *rand.Rand) []types.Value { return []types.Value{types.NewFloat(r.Float64() * 80)} }},
		// HAVING over a DISTINCT aggregate (the rewrite ships per-shard
		// distinct (group, value) pairs; HAVING runs on the recombined row)
		{sql: "SELECT i_subject, COUNT(DISTINCT i_a_id) FROM item GROUP BY i_subject HAVING COUNT(DISTINCT i_a_id) > ?",
			mkParam: func(r *rand.Rand) []types.Value { return []types.Value{types.NewInt(int64(r.Intn(30)))} }},
		// HAVING over a DISTINCT aggregate that is not in the select list,
		// plus ORDER BY over the group key
		{sql: `SELECT i_subject, MAX(i_price) FROM item GROUP BY i_subject
		       HAVING COUNT(DISTINCT i_a_id) > ? ORDER BY i_subject`,
			mkParam: func(r *rand.Rand) []types.Value { return []types.Value{types.NewInt(int64(r.Intn(30)))} }},
		// scalar DISTINCT aggregates (per-shard rewrite groups by the arg)
		{sql: "SELECT COUNT(DISTINCT i_subject), SUM(DISTINCT i_a_id) FROM item WHERE i_price > ?",
			mkParam: func(r *rand.Rand) []types.Value { return []types.Value{types.NewFloat(r.Float64() * 80)} }},
		// plain scalar aggregate (every shard ships its scalar row)
		{sql: "SELECT COUNT(*) FROM orders WHERE o_c_id = ?",
			mkParam: func(r *rand.Rand) []types.Value { return []types.Value{types.NewInt(int64(r.Intn(12)))} }},
		{sql: "SELECT DISTINCT i_subject FROM item WHERE i_price < ?",
			mkParam: func(r *rand.Rand) []types.Value { return []types.Value{types.NewFloat(r.Float64() * 90)} }},
		{sql: "SELECT o_id, o_total FROM orders WHERE o_id = ?",
			mkParam: func(r *rand.Rand) []types.Value { return []types.Value{types.NewInt(int64(r.Intn(70)))} }},
		// writes interleaved between read bursts: point insert (router
		// hashes the new key), point update, broadcast update
		{sql: "INSERT INTO item VALUES (?, ?, ?, ?, ?)", write: true,
			mkParam: nil}, // params assigned by the sweep (fresh keys)
		{sql: "UPDATE item SET i_price = ? WHERE i_id = ?", write: true,
			mkParam: func(r *rand.Rand) []types.Value {
				return []types.Value{types.NewFloat(r.Float64() * 100), types.NewInt(int64(r.Intn(140)))}
			}},
		{sql: "UPDATE item SET i_price = ? WHERE i_subject = ? AND i_price < ?", write: true,
			mkParam: func(r *rand.Rand) []types.Value {
				return []types.Value{types.NewFloat(r.Float64() * 100),
					types.NewString(fixtureSubjects[r.Intn(len(fixtureSubjects))]),
					types.NewFloat(r.Float64() * 20)}
			}},
		// replicated-table write: every shard applies it, reported once
		{sql: "UPDATE author SET a_lname = ? WHERE a_id = ?", write: true,
			mkParam: func(r *rand.Rand) []types.Value {
				return []types.Value{types.NewString(fmt.Sprintf("Ln%d", r.Intn(40))),
					types.NewInt(int64(r.Intn(30)))}
			}},
	}
}

// TestDifferentialShardedVsOracle runs the randomized workload through the
// router at every configured shard count and asserts identical result
// multisets against the per-query baseline oracle, with writes applied to
// both sides between read bursts.
func TestDifferentialShardedVsOracle(t *testing.T) {
	for _, shards := range shardCounts(t) {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			router := newRouterEnv(t, shards, core.Config{})
			oracle := newOracle(t)

			templates := sweepTemplates()
			routerStmts := make([]*plan.Statement, len(templates))
			oracleStmts := make([]*baseline.Stmt, len(templates))
			for i, tpl := range templates {
				var err error
				routerStmts[i], err = router.Prepare(tpl.sql)
				if err != nil {
					t.Fatalf("router prepare %q: %v", tpl.sql, err)
				}
				oracleStmts[i], err = oracle.Prepare(tpl.sql)
				if err != nil {
					t.Fatalf("oracle prepare %q: %v", tpl.sql, err)
				}
			}

			var reads, writes []int
			for i, tpl := range templates {
				if tpl.write {
					writes = append(writes, i)
				} else {
					reads = append(reads, i)
				}
			}

			r := rand.New(rand.NewSource(int64(4000 + shards)))
			nextItemID := int64(1000)
			for round := 0; round < 12; round++ {
				// Write phase: a few writes, mirrored on the oracle and
				// applied serially (the router's cross-shard write ordering
				// is per-statement).
				for w := 0; w < 3; w++ {
					ti := writes[r.Intn(len(writes))]
					var params []types.Value
					if templates[ti].mkParam == nil { // fresh-key insert
						params = []types.Value{
							types.NewInt(nextItemID),
							types.NewString(fmt.Sprintf("Title %02d new %d", nextItemID%10, nextItemID)),
							types.NewInt(nextItemID % 30),
							types.NewString(fixtureSubjects[nextItemID%int64(len(fixtureSubjects))]),
							types.NewFloat(float64(nextItemID%800) / 10),
						}
						nextItemID++
					} else {
						params = templates[ti].mkParam(r)
					}
					res := router.Submit(routerStmts[ti], params)
					if err := res.Wait(); err != nil {
						t.Fatalf("round %d router write %q: %v", round, templates[ti].sql, err)
					}
					want, err := oracleStmts[ti].Exec(params)
					if err != nil {
						t.Fatalf("oracle write: %v", err)
					}
					if res.RowsAffected != want.RowsAffected {
						t.Fatalf("round %d write %q: router affected %d, oracle %d",
							round, templates[ti].sql, res.RowsAffected, want.RowsAffected)
					}
				}

				// Read burst: concurrent submissions batch into generations
				// on every shard.
				n := 5 + r.Intn(25)
				idxs := make([]int, n)
				params := make([][]types.Value, n)
				results := make([]*core.Result, n)
				for i := 0; i < n; i++ {
					idxs[i] = reads[r.Intn(len(reads))]
					params[i] = templates[idxs[i]].mkParam(r)
					results[i] = router.Submit(routerStmts[idxs[i]], params[i])
				}
				for i := 0; i < n; i++ {
					if err := results[i].Wait(); err != nil {
						t.Fatalf("round %d query %d (%s): %v", round, i, templates[idxs[i]].sql, err)
					}
					want, err := oracleStmts[idxs[i]].Exec(params[i])
					if err != nil {
						t.Fatalf("oracle exec: %v", err)
					}
					if !sameRows(results[i].Rows, want.Rows) {
						t.Fatalf("round %d shards=%d: mismatch for %q params %v:\nrouter (%d rows): %v\noracle (%d rows): %v",
							round, shards, templates[idxs[i]].sql, params[i],
							len(results[i].Rows), canon(results[i].Rows),
							len(want.Rows), canon(want.Rows))
					}
				}
			}
		})
	}
}

// TestSingleShardByteIdentical pins the Shards=1 contract: the router is a
// pure pass-through, returning exactly what a directly-driven engine over
// the same data returns — same rows, same order, same schema.
func TestSingleShardByteIdentical(t *testing.T) {
	router := newRouterEnv(t, 1, core.Config{Workers: 1, MaxInFlightGenerations: 1})

	db, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mkSchema(t, db)
	if results, _ := db.ApplyOps(fixtureOps()); results != nil {
		for _, res := range results {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
		}
	}
	gp := plan.New(db)
	eng := core.New(db, gp, core.Config{Workers: 1, MaxInFlightGenerations: 1})
	defer eng.Close()

	queries := []struct {
		sql    string
		params []types.Value
	}{
		{"SELECT i_title, i_price FROM item WHERE i_id = ?", []types.Value{types.NewInt(17)}},
		{"SELECT i_id, i_title FROM item WHERE i_subject = ?", []types.Value{types.NewString("ARTS")}},
		{"SELECT i_id, i_price FROM item WHERE i_subject = ? ORDER BY i_price DESC, i_id LIMIT 8",
			[]types.Value{types.NewString("SCIENCE")}},
		{"SELECT i_subject, COUNT(*), AVG(i_price) FROM item GROUP BY i_subject", nil},
		{"SELECT i_subject, COUNT(DISTINCT i_a_id) FROM item GROUP BY i_subject HAVING COUNT(DISTINCT i_a_id) > ?",
			[]types.Value{types.NewInt(2)}},
		{"SELECT DISTINCT i_subject FROM item WHERE i_price < ?", []types.Value{types.NewFloat(50)}},
		{"SELECT COUNT(*) FROM orders WHERE o_c_id = ?", []types.Value{types.NewInt(3)}},
	}
	for _, q := range queries {
		rs, err := router.Prepare(q.sql)
		if err != nil {
			t.Fatalf("router prepare %q: %v", q.sql, err)
		}
		es, err := eng.Prepare(q.sql)
		if err != nil {
			t.Fatalf("engine prepare %q: %v", q.sql, err)
		}
		rres := router.Submit(rs, q.params)
		if err := rres.Wait(); err != nil {
			t.Fatal(err)
		}
		eres := eng.Submit(es, q.params)
		if err := eres.Wait(); err != nil {
			t.Fatal(err)
		}
		if len(rres.Rows) != len(eres.Rows) {
			t.Fatalf("%q: router %d rows, engine %d", q.sql, len(rres.Rows), len(eres.Rows))
		}
		for i := range rres.Rows {
			if len(rres.Rows[i]) != len(eres.Rows[i]) {
				t.Fatalf("%q row %d: width differs", q.sql, i)
			}
			for j := range rres.Rows[i] {
				if rres.Rows[i][j] != eres.Rows[i][j] {
					t.Fatalf("%q row %d col %d: router %#v, engine %#v (byte-identity broken)",
						q.sql, i, j, rres.Rows[i][j], eres.Rows[i][j])
				}
			}
		}
	}
}
