package shareddb

import (
	"testing"
)

// TestRowsDatabaseSQLShape pins the materialized-result contract for
// database/sql-shaped callers: Err is always nil, Close always succeeds
// (and ends iteration), and both are safe to call at any point.
func TestRowsDatabaseSQLShape(t *testing.T) {
	db := openTestDB(t)
	rows, err := db.Query(`SELECT name FROM users WHERE country = ? ORDER BY name`, "CH")
	if err != nil {
		t.Fatal(err)
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("Err before iteration = %v", err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if n != 2 {
		t.Fatalf("iterated %d rows", n)
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("Err after iteration = %v", err)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
	if rows.Next() {
		t.Fatal("Next returned true after Close")
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

func TestDBStatsCounters(t *testing.T) {
	db, err := Open(Config{FoldQueries: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE kv (k INT, v VARCHAR(8), PRIMARY KEY (k))`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := db.Exec(`INSERT INTO kv VALUES (?, ?)`, i, "x"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := db.Query(`SELECT k FROM kv WHERE k >= ?`, 0); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.WritesApplied != 5 {
		t.Fatalf("WritesApplied = %d, want 5", st.WritesApplied)
	}
	if st.QueriesRun+st.FoldedQueries != 3 {
		t.Fatalf("QueriesRun %d + FoldedQueries %d, want 3 total", st.QueriesRun, st.FoldedQueries)
	}
	if st.Generations == 0 {
		t.Fatal("Generations = 0")
	}
	if rate := st.FoldHitRate(); rate < 0 || rate > 1 {
		t.Fatalf("FoldHitRate = %v", rate)
	}
	if st.QueueDepth != 0 || st.InFlightGenerations < 0 {
		t.Fatalf("gauges: queue %d, in-flight %d", st.QueueDepth, st.InFlightGenerations)
	}
}

// TestFoldHitRateZeroReads: the rate is defined (zero) before any read.
func TestFoldHitRateZeroReads(t *testing.T) {
	var st Stats
	if got := st.FoldHitRate(); got != 0 {
		t.Fatalf("FoldHitRate on zero stats = %v", got)
	}
}

// TestFoldConfigThroughPublicAPI drives duplicate queries through DB with
// folding enabled and checks the public counters see the collapse.
func TestFoldConfigThroughPublicAPI(t *testing.T) {
	db, err := Open(Config{FoldQueries: true, FoldSubsume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE kv (k INT, v VARCHAR(8), PRIMARY KEY (k))`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := db.Exec(`INSERT INTO kv VALUES (?, ?)`, i, "x"); err != nil {
			t.Fatal(err)
		}
	}
	stmt, err := db.Prepare(`SELECT k, v FROM kv WHERE k >= ?`)
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent duplicate bursts: some land in shared generations and
	// fold; every caller still gets the full answer.
	for round := 0; round < 20; round++ {
		const dup = 8
		type out struct {
			rows *Rows
			err  error
		}
		ch := make(chan out, dup)
		for i := 0; i < dup; i++ {
			go func() {
				r, err := stmt.Query(10)
				ch <- out{r, err}
			}()
		}
		for i := 0; i < dup; i++ {
			o := <-ch
			if o.err != nil {
				t.Fatal(o.err)
			}
			if o.rows.Len() != 10 {
				t.Fatalf("duplicate got %d rows, want 10", o.rows.Len())
			}
		}
		if db.Stats().FoldedQueries > 0 {
			return // the fold path engaged through the public API
		}
	}
	t.Fatal("no fold observed across 20 concurrent duplicate bursts")
}

func TestFoldSubsumeRequiresFoldQueries(t *testing.T) {
	if err := (Config{FoldSubsume: true}).Validate(); err == nil {
		t.Fatal("FoldSubsume without FoldQueries validated")
	}
	if _, err := Open(Config{FoldSubsume: true}); err == nil {
		t.Fatal("Open accepted FoldSubsume without FoldQueries")
	}
}
