// Context-aware entry points. Every blocking call on DB, Stmt and Tx has a
// Context variant; the classic methods delegate with context.Background().
//
// Cancellation semantics: the shared generation is never perturbed. A
// SharedDB submission is a subscription to a batch — cancelling one
// subscriber must not slow down, reorder or resize the batch serving
// everyone else. On ctx expiry the caller's wait is abandoned: a fold
// subscriber detaches from its fan-out group (the lead and its other
// subscribers are untouched), a still-queued request vacates the queue at
// the next batch formation (releasing its queue-depth slot), and a request
// already drafted into a generation completes normally, unobserved.
package shareddb

import (
	"context"
	"errors"

	"shareddb/internal/core"
	"shareddb/internal/sql"
)

// awaitResult waits for res honoring ctx. On cancellation the wait is
// abandoned (Result.Abandon) and ctx.Err() returned.
func awaitResult(ctx context.Context, res *core.Result) error {
	if ctx.Done() == nil {
		return res.Wait()
	}
	select {
	case <-res.Done():
		return res.Err
	case <-ctx.Done():
		res.Abandon(ctx.Err())
		return ctx.Err()
	}
}

// QueryContext is Stmt.Query with cancellation: on ctx expiry it abandons
// the wait and returns ctx.Err() without disturbing the generation (or the
// fold group) serving any other caller.
func (s *Stmt) QueryContext(ctx context.Context, args ...interface{}) (*Rows, error) {
	if s.stmt.IsWrite() {
		return nil, errors.New("shareddb: Query on a write statement")
	}
	params, err := toValues(args)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := s.db.exec.Submit(s.stmt, params)
	if err := awaitResult(ctx, res); err != nil {
		return nil, err
	}
	return &Rows{schema: res.Schema, rows: res.Rows, pos: -1}, nil
}

// ExecContext is Stmt.Exec with cancellation. Like CommitContext, a write
// whose wait is abandoned after submission is not undone: it applies in
// its generation as if the cancellation had arrived a moment later, while
// a write still queued at the next batch formation is dropped unapplied.
func (s *Stmt) ExecContext(ctx context.Context, args ...interface{}) (Result, error) {
	params, err := toValues(args)
	if err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	res := s.db.exec.Submit(s.stmt, params)
	if err := awaitResult(ctx, res); err != nil {
		return Result{}, err
	}
	return Result{RowsAffected: res.RowsAffected}, nil
}

// PrepareContext is Prepare with cancellation. Statement registration
// quiesces the generation pipeline, which can take a while under load; on
// ctx expiry the wait is abandoned and ctx.Err() returned. The
// registration itself may still complete in the background — preparing the
// same SQL again later is always safe.
func (db *DB) PrepareContext(ctx context.Context, sqlText string) (*Stmt, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ctx.Done() == nil {
		return db.Prepare(sqlText)
	}
	type prepared struct {
		stmt *Stmt
		err  error
	}
	ch := make(chan prepared, 1)
	go func() {
		s, err := db.Prepare(sqlText)
		ch <- prepared{stmt: s, err: err}
	}()
	select {
	case p := <-ch:
		return p.stmt, p.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// QueryContext is DB.Query with cancellation (ad-hoc path: prepare, then
// query).
func (db *DB) QueryContext(ctx context.Context, sqlText string, args ...interface{}) (*Rows, error) {
	stmt, err := db.PrepareContext(ctx, sqlText)
	if err != nil {
		return nil, err
	}
	return stmt.QueryContext(ctx, args...)
}

// ExecContext is DB.Exec with cancellation. DDL applies immediately (it is
// not generation-scheduled) and only honors an already-expired context.
func (db *DB) ExecContext(ctx context.Context, sqlText string, args ...interface{}) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	ast, err := sql.Parse(sqlText)
	if err != nil {
		return Result{}, err
	}
	switch s := ast.(type) {
	case *sql.CreateTableStmt:
		return Result{}, db.createTable(s)
	case *sql.CreateIndexStmt:
		return Result{}, db.createIndex(s)
	}
	stmt, err := db.PrepareContext(ctx, sqlText)
	if err != nil {
		return Result{}, err
	}
	return stmt.ExecContext(ctx, args...)
}

// BeginContext is Begin honoring an already-expired context (opening a
// transaction takes a snapshot but never blocks on a generation).
func (db *DB) BeginContext(ctx context.Context) (*Tx, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return db.Begin(), nil
}
