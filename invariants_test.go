package shareddb

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"shareddb/internal/storage"
)

// TestTransferConservation is the classic snapshot-isolation invariant
// check through the public API: concurrent transfers between accounts must
// conserve the total balance, with conflicting transfers aborting cleanly
// (first committer wins) rather than corrupting state.
func TestTransferConservation(t *testing.T) {
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE accounts (id INT, balance INT, PRIMARY KEY (id))`); err != nil {
		t.Fatal(err)
	}
	const accounts = 10
	const initial = 1000
	for i := 0; i < accounts; i++ {
		if _, err := db.Exec(`INSERT INTO accounts VALUES (?, ?)`, int64(i), int64(initial)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	var committed, aborted int
	var mu sync.Mutex
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 25; i++ {
				from := int64(rng.Intn(accounts))
				to := int64(rng.Intn(accounts))
				if from == to {
					continue
				}
				amount := int64(rng.Intn(50) + 1)
				tx := db.Begin()
				if err := tx.Exec(`UPDATE accounts SET balance = balance - ? WHERE id = ?`, amount, from); err != nil {
					t.Error(err)
					return
				}
				if err := tx.Exec(`UPDATE accounts SET balance = balance + ? WHERE id = ?`, amount, to); err != nil {
					t.Error(err)
					return
				}
				err := tx.Commit()
				mu.Lock()
				switch {
				case err == nil:
					committed++
				case errors.Is(err, storage.ErrConflict):
					aborted++ // expected under contention: retry-or-drop
				default:
					t.Errorf("unexpected commit error: %v", err)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	rows, err := db.Query(`SELECT SUM(balance), COUNT(*) FROM accounts`)
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	var total, n int64
	rows.Scan(&total, &n)
	if n != accounts {
		t.Fatalf("accounts = %d", n)
	}
	if total != accounts*initial {
		t.Errorf("money not conserved: total = %d, want %d (committed=%d aborted=%d)",
			total, accounts*initial, committed, aborted)
	}
	if committed == 0 {
		t.Error("no transfer committed")
	}
	t.Logf("committed=%d aborted=%d (SI conflicts)", committed, aborted)
}

// TestSnapshotStabilityUnderWrites verifies that a query's result reflects
// exactly one committed snapshot even while writers mutate the table
// between generations: the per-row invariant (pair of columns always
// updated together) must never be observed violated.
func TestSnapshotStabilityUnderWrites(t *testing.T) {
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE pairs (id INT, a INT, b INT, PRIMARY KEY (id))`); err != nil {
		t.Fatal(err)
	}
	const rowsN = 20
	for i := 0; i < rowsN; i++ {
		if _, err := db.Exec(`INSERT INTO pairs VALUES (?, ?, ?)`, int64(i), int64(0), int64(0)); err != nil {
			t.Fatal(err)
		}
	}
	// writers bump (a, b) together in one transaction: a == b always holds
	// in every committed snapshot
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 100)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := int64(rng.Intn(rowsN))
				tx := db.Begin()
				tx.Exec(`UPDATE pairs SET a = a + 1 WHERE id = ?`, id)
				tx.Exec(`UPDATE pairs SET b = b + 1 WHERE id = ?`, id)
				_ = tx.Commit() // conflicts fine: both-or-neither applies
			}
		}(w)
	}

	stmt, err := db.Prepare(`SELECT id, a, b FROM pairs`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		rows, err := stmt.Query()
		if err != nil {
			t.Fatal(err)
		}
		for rows.Next() {
			var id, a, b int64
			rows.Scan(&id, &a, &b)
			if a != b {
				t.Fatalf("snapshot tore row %d: a=%d b=%d", id, a, b)
			}
		}
	}
	close(stop)
	wg.Wait()
}
