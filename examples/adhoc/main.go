// Adhoc: how ad-hoc queries join the always-on global plan (§3.2: "even
// ad-hoc queries can take advantage of sharing ... all operators of the
// global plan can be regarded by the query compiler as materialized views").
//
// The example registers a small prepared workload, prints the global plan,
// then issues ad-hoc queries and prints the plan again: queries whose shape
// matches existing operators add almost nothing; novel shapes grow the DAG.
//
//	go run ./examples/adhoc
package main

import (
	"fmt"
	"log"

	"shareddb"
)

func main() {
	db, err := shareddb.Open(shareddb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	mustExec(db, `CREATE TABLE users (user_id INT, username VARCHAR(20),
		country VARCHAR(2), PRIMARY KEY (user_id))`)
	mustExec(db, `CREATE TABLE orders (o_id INT, o_user_id INT, o_status VARCHAR(10),
		o_total FLOAT, PRIMARY KEY (o_id))`)
	mustExec(db, `CREATE INDEX orders_user ON orders (o_user_id)`)
	for i := 1; i <= 50; i++ {
		mustExec(db, `INSERT INTO users VALUES (?, ?, ?)`,
			int64(i), fmt.Sprintf("user%02d", i), []string{"CH", "DE", "US"}[i%3])
	}
	for o := 1; o <= 200; o++ {
		mustExec(db, `INSERT INTO orders VALUES (?, ?, ?, ?)`,
			int64(o), int64(o%50+1), []string{"OK", "PENDING"}[o%2], float64(o)*3.5)
	}

	// The prepared workload: the Q2-style join of the paper's Figure 2.
	q2, err := db.Prepare(`SELECT username, o_id, o_total FROM users, orders
		WHERE user_id = o_user_id AND username = ? AND o_status = ?`)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := q2.Query("user07", "OK"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("global plan after preparing the workload:")
	fmt.Println(db.DescribePlan())

	// Ad-hoc query 1: same join shape, different predicates → shares the
	// existing join operator (it acts as a materialized view).
	rows, err := db.Query(`SELECT username, COUNT(*) FROM users, orders
		WHERE user_id = o_user_id AND country = ? GROUP BY username
		ORDER BY username LIMIT 5`, "CH")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ad-hoc top CH users by orders:")
	for rows.Next() {
		var name string
		var n int64
		rows.Scan(&name, &n)
		fmt.Printf("  %-8s %d orders\n", name, n)
	}

	fmt.Println("\nglobal plan after the ad-hoc query (join node reused, new Γ added):")
	fmt.Println(db.DescribePlan())
}

func mustExec(db *shareddb.DB, sql string, args ...interface{}) {
	if _, err := db.Exec(sql, args...); err != nil {
		log.Fatal(err)
	}
}
