// Quickstart: open a SharedDB database, create a schema, run queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"shareddb"
)

func main() {
	db, err := shareddb.Open(shareddb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must := func(_ shareddb.Result, err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(db.Exec(`CREATE TABLE users (
		id INT, name VARCHAR(40), country VARCHAR(2), account FLOAT,
		PRIMARY KEY (id))`))
	must(db.Exec(`CREATE INDEX users_country ON users (country)`))

	for i, u := range []struct {
		name, country string
		account       float64
	}{
		{"ada", "CH", 1200.50}, {"bob", "DE", 340.00}, {"eve", "CH", 78.25},
		{"dan", "US", 2048.00}, {"kim", "DE", 913.40},
	} {
		must(db.Exec(`INSERT INTO users VALUES (?, ?, ?, ?)`, i+1, u.name, u.country, u.account))
	}

	// Prepared statements are the unit of sharing: every concurrent
	// activation of this statement runs on the same shared operators.
	stmt, err := db.Prepare(`SELECT name, account FROM users
		WHERE country = ? ORDER BY account DESC`)
	if err != nil {
		log.Fatal(err)
	}
	for _, country := range []string{"CH", "DE"} {
		rows, err := stmt.Query(country)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s users:\n", country)
		for rows.Next() {
			var name string
			var account float64
			if err := rows.Scan(&name, &account); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-6s %8.2f\n", name, account)
		}
	}

	// Ad-hoc queries join the always-on plan, sharing whatever matches.
	rows, err := db.Query(`SELECT country, COUNT(*), SUM(account) FROM users GROUP BY country`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\naccounts by country:")
	for rows.Next() {
		var country string
		var n int64
		var total float64
		rows.Scan(&country, &n, &total)
		fmt.Printf("  %-3s %d users, total %9.2f\n", country, n, total)
	}

	// Transactions are snapshot-isolated and commit in the next batch.
	tx := db.Begin()
	if err := tx.Exec(`UPDATE users SET account = account - ? WHERE id = ?`, 100.0, 1); err != nil {
		log.Fatal(err)
	}
	if err := tx.Exec(`UPDATE users SET account = account + ? WHERE id = ?`, 100.0, 3); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntransferred 100.00 from ada to eve")

	rows, _ = db.Query(`SELECT name, account FROM users WHERE id IN (1, 3) ORDER BY id`)
	for rows.Next() {
		var name string
		var account float64
		rows.Scan(&name, &account)
		fmt.Printf("  %-6s %8.2f\n", name, account)
	}
}
