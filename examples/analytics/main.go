// Analytics: concurrent analytical queries over a live, updating fact
// table — the mixed OLTP/OLAP workload the paper argues SharedDB uniquely
// handles (§1: "SharedDB is able to process OLTP workloads in addition to
// OLAP and mixed workloads").
//
// Many dashboard sessions run the same GROUP BY template with different
// filters while a writer streams in new measurements; all dashboards share
// one grouping operator per generation, and snapshot isolation keeps every
// answer consistent.
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"shareddb"
)

func main() {
	db, err := shareddb.Open(shareddb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	mustExec(db, `CREATE TABLE metrics (
		m_id INT, region VARCHAR(8), service VARCHAR(12),
		latency FLOAT, errors INT, PRIMARY KEY (m_id))`)
	mustExec(db, `CREATE INDEX metrics_region ON metrics (region)`)

	regions := []string{"eu-west", "eu-east", "us-west", "us-east", "apac"}
	services := []string{"api", "web", "batch", "search"}
	var nextID atomic.Int64
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		insertMetric(db, &nextID, regions[rng.Intn(5)], services[rng.Intn(4)],
			rng.Float64()*200, int64(rng.Intn(3)))
	}

	// One dashboard template, many concurrent activations with different
	// parameters — sharing within the same query type (§3.2).
	dashboard, err := db.Prepare(`SELECT service, COUNT(*), AVG(latency), SUM(errors)
		FROM metrics WHERE region = ? GROUP BY service ORDER BY service`)
	if err != nil {
		log.Fatal(err)
	}
	slowest, err := db.Prepare(`SELECT m_id, service, latency FROM metrics
		WHERE region = ? AND latency > ? ORDER BY latency DESC LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// the writer: a stream of new measurements
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(2))
		for {
			select {
			case <-stop:
				return
			default:
				insertMetric(db, &nextID, regions[wrng.Intn(5)], services[wrng.Intn(4)],
					wrng.Float64()*200, int64(wrng.Intn(3)))
			}
		}
	}()

	// 20 dashboards refreshing concurrently
	var refreshes atomic.Int64
	for d := 0; d < 20; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			drng := rand.New(rand.NewSource(int64(d + 10)))
			for i := 0; i < 25; i++ {
				region := regions[drng.Intn(5)]
				if _, err := dashboard.Query(region); err != nil {
					log.Println(err)
				}
				if _, err := slowest.Query(region, 150.0); err != nil {
					log.Println(err)
				}
				refreshes.Add(1)
			}
		}(d)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	start := time.Now()
	for {
		select {
		case <-done:
			goto report
		case <-time.After(50 * time.Millisecond):
			if refreshes.Load() >= 500 {
				close(stop)
				<-done
				goto report
			}
		}
	}
report:
	_ = start
	st := db.Stats()
	gens, queries, writes := st.Generations, st.QueriesRun, st.WritesApplied
	fmt.Printf("dashboards refreshed %d times while %d rows streamed in\n",
		refreshes.Load(), writes)
	fmt.Printf("%d generations served %d queries (avg batch %.1f)\n",
		gens, queries, float64(queries+writes)/float64(gens))

	rows, _ := db.Query(`SELECT region, COUNT(*), AVG(latency) FROM metrics
		GROUP BY region ORDER BY region`)
	fmt.Println("\nfinal state:")
	for rows.Next() {
		var region string
		var n int64
		var avg float64
		rows.Scan(&region, &n, &avg)
		fmt.Printf("  %-8s %6d samples, avg latency %6.1f ms\n", region, n, avg)
	}
}

func insertMetric(db *shareddb.DB, id *atomic.Int64, region, service string, lat float64, errs int64) {
	if _, err := db.Exec(`INSERT INTO metrics VALUES (?, ?, ?, ?, ?)`,
		id.Add(1), region, service, lat, errs); err != nil {
		log.Fatal(err)
	}
}

func mustExec(db *shareddb.DB, sql string, args ...interface{}) {
	if _, err := db.Exec(sql, args...); err != nil {
		log.Fatal(err)
	}
}
