// Bookstore: the paper's motivating workload — hundreds of concurrent
// clients hammering an online bookstore with a mix of point lookups and
// heavy analytical queries. One global plan serves them all; the engine
// stats at the end show how many queries each heartbeat generation batched.
//
//	go run ./examples/bookstore
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"shareddb"
)

func main() {
	db, err := shareddb.Open(shareddb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	setup(db)

	// The workload's statement templates — prepared once, like the ~30
	// JDBC PreparedStatements of TPC-W (paper §2).
	byID, _ := db.Prepare(`SELECT i_title, i_price FROM item WHERE i_id = ?`)
	bySubject, _ := db.Prepare(`SELECT i_id, i_title FROM item WHERE i_subject = ?
		ORDER BY i_title LIMIT 10`)
	bestSellers, _ := db.Prepare(`SELECT i_id, i_title, SUM(ol_qty) AS sold
		FROM order_line, item WHERE ol_i_id = i_id AND ol_o_id > ?
		GROUP BY i_id, i_title ORDER BY sold DESC, i_id LIMIT 5`)
	buy, _ := db.Prepare(`INSERT INTO order_line (ol_id, ol_o_id, ol_i_id, ol_qty)
		VALUES (?, ?, ?, ?)`)

	subjects := []string{"ARTS", "SCIENCE", "HISTORY", "COOKING"}
	var wg sync.WaitGroup
	var olID, oID int64 = 100000, 100000
	var mu sync.Mutex
	nextIDs := func() (int64, int64) {
		mu.Lock()
		defer mu.Unlock()
		olID++
		oID++
		return olID, oID
	}

	start := time.Now()
	const clients = 64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < 30; i++ {
				switch rng.Intn(4) {
				case 0:
					if _, err := byID.Query(int64(rng.Intn(500) + 1)); err != nil {
						log.Println(err)
					}
				case 1:
					if _, err := bySubject.Query(subjects[rng.Intn(4)]); err != nil {
						log.Println(err)
					}
				case 2:
					if _, err := bestSellers.Query(int64(rng.Intn(100))); err != nil {
						log.Println(err)
					}
				default:
					ol, o := nextIDs()
					if _, err := buy.Exec(ol, o, int64(rng.Intn(500)+1), int64(1+rng.Intn(3))); err != nil {
						log.Println(err)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := db.Stats()
	gens, queries, writes := st.Generations, st.QueriesRun, st.WritesApplied
	fmt.Printf("%d clients × 30 requests in %v\n", clients, elapsed.Round(time.Millisecond))
	fmt.Printf("engine ran %d generations for %d queries + %d writes\n", gens, queries, writes)
	fmt.Printf("→ average batch size %.1f (shared execution: one big join/sort per generation)\n",
		float64(queries+writes)/float64(gens))

	rows, _ := db.Query(`SELECT i_id, i_title, SUM(ol_qty) AS sold FROM order_line, item
		WHERE ol_i_id = i_id GROUP BY i_id, i_title ORDER BY sold DESC, i_id LIMIT 3`)
	fmt.Println("\ntop sellers after the run:")
	for rows.Next() {
		var id, sold int64
		var title string
		rows.Scan(&id, &title, &sold)
		fmt.Printf("  #%d %-30s sold %d\n", id, title, sold)
	}
}

func setup(db *shareddb.DB) {
	mustExec(db, `CREATE TABLE item (i_id INT, i_title VARCHAR(60),
		i_subject VARCHAR(20), i_price FLOAT, PRIMARY KEY (i_id))`)
	mustExec(db, `CREATE INDEX item_subject ON item (i_subject)`)
	mustExec(db, `CREATE TABLE order_line (ol_id INT, ol_o_id INT, ol_i_id INT,
		ol_qty INT, PRIMARY KEY (ol_id))`)
	mustExec(db, `CREATE INDEX ol_item ON order_line (ol_i_id)`)

	subjects := []string{"ARTS", "SCIENCE", "HISTORY", "COOKING"}
	for i := 1; i <= 500; i++ {
		mustExec(db, `INSERT INTO item VALUES (?, ?, ?, ?)`,
			int64(i), fmt.Sprintf("Book %04d", i), subjects[i%4], float64(i%90)+9.99)
	}
	for ol := 1; ol <= 2000; ol++ {
		mustExec(db, `INSERT INTO order_line VALUES (?, ?, ?, ?)`,
			int64(ol), int64(ol/4+1), int64(ol*7%500+1), int64(ol%3+1))
	}
}

func mustExec(db *shareddb.DB, sql string, args ...interface{}) {
	if _, err := db.Exec(sql, args...); err != nil {
		log.Fatalf("%s: %v", sql[:40], err)
	}
}
